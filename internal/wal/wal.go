// Package wal is an append-only, CRC-framed, segment-rotating
// write-ahead log of graph mutations. rmserved appends each accepted
// /v1/mutate delta here (fsynced per policy) before the generation
// swap is acknowledged, so a crash can never silently rewind the
// engine past a durably-acked mutation.
//
// # On-disk layout
//
// A log is a directory of segment files named
//
//	wal-<epoch>-<seq>.log
//
// (both fields zero-padded base-10, so lexicographic order is replay
// order). Segments within one epoch form a single record stream; a
// checkpoint truncation starts a fresh epoch and deletes the old one.
// Every segment starts with a 36-byte header:
//
//	[8]  magic "RMWAL\x00\x00\x01"
//	u32  format version (1)
//	u64  epoch
//	u64  seq
//	u64  prevGen — generation of the last record before this segment
//	     (the epoch's checkpoint base for seq 0)
//
// followed by frames:
//
//	u32  payload length
//	u32  CRC-32C (Castagnoli) of the payload
//	[..] payload — one encoded Record
//
// All integers are little-endian, matching the snapshot format.
//
// # Corruption and crash handling
//
// Replay distinguishes a torn tail from corruption, etcd-style: a bad
// frame (short header, short payload, CRC mismatch) at the tail of the
// LAST segment is the expected residue of a crash mid-append — the
// file is truncated back to the last good frame and replay succeeds.
// The same damage anywhere else — an interior segment, or followed by
// more bytes — means the log is corrupt and Open fails with an error
// wrapping ErrBadWAL; no prefix of a knowingly-damaged log is ever
// replayed as if it were complete. Record generations must advance by
// exactly one from the segment chain's prevGen; any gap or repeat is
// likewise ErrBadWAL.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/graph"
)

// ErrBadWAL is the sentinel wrapped by every corruption error: a log
// that cannot be replayed to a trustworthy state. A torn tail on the
// final segment is NOT ErrBadWAL — it is repaired by truncation.
var ErrBadWAL = errors.New("wal: corrupt write-ahead log")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a record is durable
	// before Append returns. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS page cache. Appends survive
	// process crashes but not machine crashes; for tests and
	// benchmarks.
	SyncNever
)

// Options configure a Log.
type Options struct {
	// Sync is the fsync policy for appends (default SyncAlways).
	Sync SyncPolicy
	// SegmentBytes rotates to a new segment file once the current one
	// would exceed this size (default 4 MiB).
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Record is one logged mutation: the delta that advanced the named
// engine to Generation.
type Record struct {
	Dataset    string
	H          int
	Generation uint64
	Delta      *graph.Delta
}

const (
	headerSize     = 36
	frameHdrSize   = 8
	formatVersion  = 1
	maxRecordBytes = 64 << 20
	maxDatasetLen  = 1 << 12
	maxH           = 1 << 20
)

var (
	segMagic = [8]byte{'R', 'M', 'W', 'A', 'L', 0x00, 0x00, 0x01}
	crcTable = crc32.MakeTable(crc32.Castagnoli)
)

// Stats is a point-in-time snapshot of a Log's counters, feeding the
// rmserved_wal_* metrics.
type Stats struct {
	Appends        int64
	FsyncSeconds   float64
	Records        int64 // records in the current epoch
	Segments       int   // segment files in the current epoch
	SizeBytes      int64 // bytes across the current epoch's segments
	BaseGeneration uint64
	LastGeneration uint64
}

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu         sync.Mutex
	f          *os.File // current tail segment, positioned at size
	size       int64    // bytes in the tail segment
	totalBytes int64    // bytes across the current epoch
	epoch      uint64
	seq        uint64
	baseGen    uint64
	lastGen    uint64
	records    int64
	appends    int64
	fsyncNanos int64
	broken     bool
	closed     bool
}

// Open opens (creating if needed) the log in dir, repairs a torn tail,
// and returns the surviving records in append order. Corruption that
// truncation cannot repair returns an error wrapping ErrBadWAL.
func Open(dir string, opts Options) (*Log, []Record, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opts: opts}

	byEpoch, maxEpoch, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(byEpoch) == 0 {
		if err := l.startEpoch(0, 0); err != nil {
			return nil, nil, err
		}
		return l, nil, nil
	}

	// Pick the newest epoch whose first segment header is complete. A
	// shorter-than-header first segment is the residue of a crash
	// mid-Truncate (the old epoch is still on disk underneath it);
	// discard it and fall back.
	epochs := make([]uint64, 0, len(byEpoch))
	for ep := range byEpoch {
		epochs = append(epochs, ep)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] > epochs[j] })
	chosen := -1
	for i, ep := range epochs {
		segs := byEpoch[ep]
		if segs[0].seq != 0 {
			return nil, nil, fmt.Errorf("%w: epoch %d starts at segment %d", ErrBadWAL, ep, segs[0].seq)
		}
		fi, err := os.Stat(segs[0].path)
		if err != nil {
			return nil, nil, err
		}
		if fi.Size() < headerSize {
			for _, s := range segs {
				if err := os.Remove(s.path); err != nil {
					return nil, nil, err
				}
			}
			continue
		}
		chosen = i
		break
	}
	if chosen == -1 {
		// Every epoch was a torn creation: the log never held a
		// durable record. Start over past the highest epoch seen.
		if err := l.startEpoch(maxEpoch+1, 0); err != nil {
			return nil, nil, err
		}
		return l, nil, nil
	}
	// Stale lower epochs (leftovers of an interrupted checkpoint
	// truncation) lose to the chosen one.
	for _, ep := range epochs[chosen+1:] {
		for _, s := range byEpoch[ep] {
			if err := os.Remove(s.path); err != nil {
				return nil, nil, err
			}
		}
	}

	recs, err := l.scanEpoch(byEpoch[epochs[chosen]])
	if err != nil {
		return nil, nil, err
	}
	return l, recs, nil
}

type segFile struct {
	path  string
	epoch uint64
	seq   uint64
}

func listSegments(dir string) (map[uint64][]segFile, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	byEpoch := map[uint64][]segFile{}
	var maxEpoch uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		body := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
		epochStr, seqStr, ok := strings.Cut(body, "-")
		if !ok {
			continue
		}
		epoch, err1 := strconv.ParseUint(epochStr, 10, 64)
		seq, err2 := strconv.ParseUint(seqStr, 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		byEpoch[epoch] = append(byEpoch[epoch], segFile{path: filepath.Join(dir, name), epoch: epoch, seq: seq})
		if epoch > maxEpoch {
			maxEpoch = epoch
		}
	}
	for _, segs := range byEpoch {
		sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	}
	return byEpoch, maxEpoch, nil
}

func segName(epoch, seq uint64) string {
	return fmt.Sprintf("wal-%010d-%010d.log", epoch, seq)
}

// scanEpoch replays one epoch's segment chain, repairing the tail of
// the final segment, and leaves the log open for append at the end.
func (l *Log) scanEpoch(segs []segFile) ([]Record, error) {
	var recs []Record
	var gen uint64
	haveGen := false
	for i, s := range segs {
		last := i == len(segs)-1
		if s.seq != uint64(i) {
			return nil, fmt.Errorf("%w: epoch %d missing segment %d", ErrBadWAL, s.epoch, i)
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return nil, err
		}
		if len(data) < headerSize {
			// A rotation that crashed after creating the file but
			// before its header hit disk. Only tolerable at the tail.
			if !last {
				return nil, fmt.Errorf("%w: torn header on interior segment %s", ErrBadWAL, filepath.Base(s.path))
			}
			if err := os.Remove(s.path); err != nil {
				return nil, err
			}
			segs = segs[:i]
			break
		}
		prevGen, err := parseHeader(data, s.epoch, s.seq)
		if err != nil {
			return nil, err
		}
		if !haveGen {
			gen = prevGen
			l.baseGen = prevGen
			haveGen = true
		} else if prevGen != gen {
			return nil, fmt.Errorf("%w: segment %s claims prev generation %d, chain is at %d",
				ErrBadWAL, filepath.Base(s.path), prevGen, gen)
		}

		off := headerSize
		goodOff := off
		for off < len(data) {
			rec, next, ferr := parseFrame(data, off)
			if ferr != nil {
				if !last {
					return nil, fmt.Errorf("%w: %v in interior segment %s", ErrBadWAL, ferr, filepath.Base(s.path))
				}
				// Torn tail: drop the damaged suffix.
				if err := os.Truncate(s.path, int64(goodOff)); err != nil {
					return nil, err
				}
				break
			}
			if rec.Generation != gen+1 {
				return nil, fmt.Errorf("%w: record generation %d after %d in %s",
					ErrBadWAL, rec.Generation, gen, filepath.Base(s.path))
			}
			gen = rec.Generation
			recs = append(recs, rec)
			off = next
			goodOff = next
		}
	}

	tail := segs[len(segs)-1]
	f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(fi.Size(), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	l.size = fi.Size()
	l.epoch = tail.epoch
	l.seq = tail.seq
	l.lastGen = gen
	l.records = int64(len(recs))
	l.totalBytes = l.size
	for _, s := range segs[:len(segs)-1] {
		if fi, err := os.Stat(s.path); err == nil {
			l.totalBytes += fi.Size()
		}
	}
	return recs, nil
}

func parseHeader(data []byte, wantEpoch, wantSeq uint64) (prevGen uint64, err error) {
	if [8]byte(data[:8]) != segMagic {
		return 0, fmt.Errorf("%w: bad segment magic", ErrBadWAL)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != formatVersion {
		return 0, fmt.Errorf("%w: unsupported format version %d", ErrBadWAL, v)
	}
	epoch := binary.LittleEndian.Uint64(data[12:])
	seq := binary.LittleEndian.Uint64(data[20:])
	if epoch != wantEpoch || seq != wantSeq {
		return 0, fmt.Errorf("%w: header says epoch %d seq %d, file name says %d/%d",
			ErrBadWAL, epoch, seq, wantEpoch, wantSeq)
	}
	return binary.LittleEndian.Uint64(data[28:]), nil
}

// parseFrame decodes the frame at data[off:]. Errors are raw (not
// ErrBadWAL-wrapped) so the caller can decide torn-tail vs corrupt.
func parseFrame(data []byte, off int) (Record, int, error) {
	if len(data)-off < frameHdrSize {
		return Record{}, 0, errors.New("short frame header")
	}
	n := binary.LittleEndian.Uint32(data[off:])
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n > maxRecordBytes {
		return Record{}, 0, fmt.Errorf("frame length %d exceeds limit", n)
	}
	start := off + frameHdrSize
	if len(data)-start < int(n) {
		return Record{}, 0, errors.New("short frame payload")
	}
	payload := data[start : start+int(n)]
	if crc32.Checksum(payload, crcTable) != sum {
		return Record{}, 0, errors.New("frame checksum mismatch")
	}
	rec, err := parseRecord(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, start + int(n), nil
}

func appendRecordPayload(buf []byte, r Record) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Dataset)))
	buf = append(buf, r.Dataset...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.H))
	buf = binary.LittleEndian.AppendUint64(buf, r.Generation)
	return graph.EncodeDelta(buf, r.Delta)
}

func parseRecord(payload []byte) (Record, error) {
	if len(payload) < 4 {
		return Record{}, errors.New("record too short")
	}
	dsLen := binary.LittleEndian.Uint32(payload)
	if dsLen > maxDatasetLen || len(payload) < 4+int(dsLen)+12 {
		return Record{}, errors.New("bad dataset length")
	}
	r := Record{Dataset: string(payload[4 : 4+dsLen])}
	off := 4 + int(dsLen)
	h := binary.LittleEndian.Uint32(payload[off:])
	if h > maxH {
		return Record{}, errors.New("bad h value")
	}
	r.H = int(h)
	r.Generation = binary.LittleEndian.Uint64(payload[off+4:])
	d, n, err := graph.DecodeDelta(payload[off+12:])
	if err != nil {
		return Record{}, fmt.Errorf("bad delta: %v", err)
	}
	if off+12+n != len(payload) {
		return Record{}, errors.New("trailing bytes after delta")
	}
	r.Delta = d
	return r, nil
}

// startEpoch creates segment (epoch, 0) with prevGen as its base and
// points the log at it.
func (l *Log) startEpoch(epoch, prevGen uint64) error {
	f, err := l.createSegment(epoch, 0, prevGen)
	if err != nil {
		return err
	}
	l.f = f
	l.size = headerSize
	l.totalBytes = headerSize
	l.epoch = epoch
	l.seq = 0
	l.baseGen = prevGen
	l.lastGen = prevGen
	l.records = 0
	return nil
}

// createSegment writes a fresh segment file with a synced header and
// makes its directory entry durable.
func (l *Log) createSegment(epoch, seq, prevGen uint64) (*os.File, error) {
	var hdr [headerSize]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint64(hdr[12:], epoch)
	binary.LittleEndian.PutUint64(hdr[20:], seq)
	binary.LittleEndian.PutUint64(hdr[28:], prevGen)

	path := filepath.Join(l.dir, segName(epoch, seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*os.File, error) {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if _, err := f.Write(hdr[:]); err != nil {
		return fail(err)
	}
	if l.opts.Sync == SyncAlways {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
		if err := syncDir(l.dir); err != nil {
			return fail(err)
		}
	}
	return f, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Append frames, writes, and (per policy) fsyncs one record. The
// record is durable when Append returns nil. On any write or sync
// failure the partial tail is truncated away before returning, so a
// failed append leaves no residue for the next append — or the next
// boot — to trip over; if even that repair fails the log wedges itself
// and every later Append errors.
//
// Records must arrive in generation order: r.Generation must be
// exactly LastGeneration()+1.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return errors.New("wal: log is closed")
	case l.broken:
		return errors.New("wal: log is wedged after a failed tail repair; restart to recover")
	case r.Generation != l.lastGen+1:
		return fmt.Errorf("wal: out-of-order append: generation %d after %d", r.Generation, l.lastGen)
	case len(r.Dataset) > maxDatasetLen:
		return fmt.Errorf("wal: dataset name longer than %d bytes", maxDatasetLen)
	case r.H < 0 || r.H > maxH:
		return fmt.Errorf("wal: h %d out of range", r.H)
	}

	payload := appendRecordPayload(make([]byte, 0, 64), r)
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, 0, frameHdrSize+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)

	if l.size+int64(len(frame)) > l.opts.SegmentBytes && l.size > headerSize {
		if err := l.rotate(); err != nil {
			return err
		}
	}

	off := l.size
	if err := faults.Inject("wal.append.write"); err != nil {
		return err
	}
	if _, err := l.f.Write(frame); err != nil {
		l.repairTail(off)
		return err
	}
	l.size += int64(len(frame))
	l.totalBytes += int64(len(frame))
	if l.opts.Sync == SyncAlways {
		if err := faults.Inject("wal.append.sync"); err != nil {
			l.repairTail(off)
			return err
		}
		start := time.Now()
		err := l.f.Sync()
		l.fsyncNanos += time.Since(start).Nanoseconds()
		if err != nil {
			l.repairTail(off)
			return err
		}
	}
	l.lastGen = r.Generation
	l.records++
	l.appends++
	return nil
}

// repairTail removes a partial or non-durable append so the on-disk
// stream ends at the last acknowledged record.
func (l *Log) repairTail(off int64) {
	if err := l.f.Truncate(off); err != nil {
		l.broken = true
		return
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		l.broken = true
		return
	}
	l.totalBytes -= l.size - off
	l.size = off
}

// rotate seals the current segment and opens the next one in the same
// epoch. Called with l.mu held.
func (l *Log) rotate() error {
	if err := faults.Inject("wal.rotate"); err != nil {
		return err
	}
	if l.opts.Sync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	nf, err := l.createSegment(l.epoch, l.seq+1, l.lastGen)
	if err != nil {
		return err // old segment still open; the log stays usable
	}
	l.f.Close()
	l.f = nf
	l.seq++
	l.size = headerSize
	l.totalBytes += headerSize
	return nil
}

// Truncate starts a fresh epoch based at gen and deletes every older
// segment. The caller must have made gen durable elsewhere first (a
// checkpoint snapshot): records at or below gen vanish from the log.
// gen must be at least LastGeneration() — truncating away records that
// are not checkpoint-covered is refused.
func (l *Log) Truncate(gen uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return errors.New("wal: log is closed")
	case l.broken:
		return errors.New("wal: log is wedged after a failed tail repair; restart to recover")
	case gen < l.lastGen:
		return fmt.Errorf("wal: refusing to truncate to generation %d below last record %d", gen, l.lastGen)
	}
	if err := faults.Inject("wal.truncate"); err != nil {
		return err
	}
	nf, err := l.createSegment(l.epoch+1, 0, gen)
	if err != nil {
		return err // old epoch intact; the log stays usable
	}
	old := l.f
	l.f = nf
	l.epoch++
	l.seq = 0
	l.size = headerSize
	l.totalBytes = headerSize
	l.baseGen = gen
	l.lastGen = gen
	l.records = 0
	old.Close()

	byEpoch, _, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for ep, segs := range byEpoch {
		if ep == l.epoch {
			continue
		}
		for _, s := range segs {
			if err := os.Remove(s.path); err != nil {
				return err
			}
		}
	}
	if l.opts.Sync == SyncAlways {
		return syncDir(l.dir)
	}
	return nil
}

// BaseGeneration returns the generation the current epoch starts from
// (its checkpoint base).
func (l *Log) BaseGeneration() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.baseGen
}

// LastGeneration returns the generation of the newest durable record,
// or the epoch base when the log is empty.
func (l *Log) LastGeneration() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastGen
}

// Stats returns the log's counters for metrics export.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:        l.appends,
		FsyncSeconds:   float64(l.fsyncNanos) / 1e9,
		Records:        l.records,
		Segments:       int(l.seq) + 1,
		SizeBytes:      l.totalBytes,
		BaseGeneration: l.baseGen,
		LastGeneration: l.lastGen,
	}
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the tail segment. The log rejects appends
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	var err error
	if l.opts.Sync == SyncAlways && !l.broken {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
