package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// FuzzReplayWAL feeds arbitrary bytes to Open as the sole segment of a
// log directory. The contract under fuzz: Open either replays cleanly
// (possibly after truncating a torn tail) or fails with an error
// wrapping ErrBadWAL — it never panics, and a successful open leaves a
// log that still accepts a contiguous append and replays it back.
func FuzzReplayWAL(f *testing.F) {
	// Seed corpus: hand-built valid logs of increasing complexity,
	// plus classic damage shapes (truncation, bit flip, duplication).
	build := func(n int) []byte {
		dir := f.TempDir()
		l, _, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			f.Fatal(err)
		}
		for g := 1; g <= n; g++ {
			r := Record{
				Dataset:    "flixster",
				H:          4,
				Generation: uint64(g),
				Delta: &graph.Delta{
					AddEdges: []graph.Edge{{U: int32(g), V: int32(g + 1)}},
					SetProbs: []graph.ProbUpdate{{U: 1, V: 2, Topic: 3, P: 0.25}},
				},
			}
			if err := l.Append(r); err != nil {
				f.Fatal(err)
			}
		}
		l.Close()
		data, err := os.ReadFile(filepath.Join(dir, segName(0, 0)))
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	empty := build(0)
	three := build(3)
	f.Add([]byte{})
	f.Add(empty)
	f.Add(three)
	f.Add(three[:len(three)-3])                                      // torn tail
	f.Add(append(append([]byte{}, three...), three[headerSize:]...)) // duplicated records
	flipped := append([]byte{}, three...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0, 0)), data, 0o644); err != nil {
			t.Skip()
		}
		l, recs, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			if !errors.Is(err, ErrBadWAL) {
				t.Fatalf("non-ErrBadWAL failure: %v", err)
			}
			return
		}
		defer l.Close()
		// A successful open must leave an appendable, replayable log.
		next := l.LastGeneration() + 1
		if err := l.Append(Record{Dataset: "d", H: 1, Generation: next, Delta: &graph.Delta{}}); err != nil {
			t.Fatalf("append to recovered log: %v", err)
		}
		l.Close()
		l2, recs2, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("reopen after recovery+append: %v", err)
		}
		defer l2.Close()
		if len(recs2) != len(recs)+1 {
			t.Fatalf("reopen replayed %d records, want %d", len(recs2), len(recs)+1)
		}
	})
}
