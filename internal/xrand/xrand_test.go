package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
	c := New(124)
	same := 0
	a = New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincide %d/1000 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	c1 := parent.Split()
	c2 := parent.Split()
	equal := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split children coincide %d/1000 times", equal)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(10)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const k, n = 10, 100000
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[r.Intn(k)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/k) > 0.1*n/k {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", i, c, n/k)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(12)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d out of range", v)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(13)
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", float64(hits)/n)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(14)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(15)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if math.Abs(sum/n-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", sum/n)
	}
}

func TestUniform(t *testing.T) {
	r := New(16)
	for i := 0; i < 10000; i++ {
		x := r.Uniform(3, 7)
		if x < 3 || x >= 7 {
			t.Fatalf("Uniform(3,7) = %v out of range", x)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestGammaMean(t *testing.T) {
	r := New(18)
	for _, shape := range []float64{0.5, 1, 2.5, 7} {
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		mean := sum / n
		if math.Abs(mean-shape)/shape > 0.03 {
			t.Errorf("Gamma(%v) mean = %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(19)
	out := make([]float64, 8)
	for trial := 0; trial < 100; trial++ {
		r.Dirichlet(0.3, out)
		var sum float64
		for _, x := range out {
			if x < 0 {
				t.Fatal("Dirichlet produced negative mass")
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sums to %v", sum)
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(20)
	const n = 50000
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		v := r.Zipf(2.0, 100)
		if v < 1 || v > 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[4] {
		t.Errorf("Zipf counts not decreasing: c1=%d c2=%d c4=%d",
			counts[1], counts[2], counts[4])
	}
}

func TestShuffleCoverage(t *testing.T) {
	// Every position should receive every value with roughly uniform
	// frequency for a small permutation.
	const n = 4
	const trials = 40000
	var counts [n][n]int
	r := New(21)
	for tr := 0; tr < trials; tr++ {
		a := []int{0, 1, 2, 3}
		r.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
		for pos, v := range a {
			counts[pos][v]++
		}
	}
	want := float64(trials) / n
	for pos := 0; pos < n; pos++ {
		for v := 0; v < n; v++ {
			if math.Abs(float64(counts[pos][v])-want) > 0.1*want {
				t.Fatalf("Shuffle bias at pos %d value %d: %d (want ~%v)",
					pos, v, counts[pos][v], want)
			}
		}
	}
}
