// Package xrand provides deterministic, splittable pseudo-random number
// generation for the whole library.
//
// Every randomized component (graph generators, cascade simulation, RR-set
// sampling, budget synthesis) takes an *xrand.RNG so that experiments are
// reproducible bit-for-bit under a fixed seed, and parallel workers can each
// receive an independent stream derived from a parent seed via Split.
//
// The core generator is xoshiro256**, seeded through splitmix64, following
// the reference constructions of Blackman & Vigna. Both are tiny, fast and
// statistically strong enough for Monte-Carlo simulation.
package xrand

import "math"

// splitmix64 advances the seed-expansion state and returns the next value.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** generator. It is not safe for concurrent use; use
// Split to derive independent generators for concurrent workers.
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from the given seed. Distinct seeds yield
// decorrelated streams thanks to splitmix64 expansion.
func New(seed uint64) *RNG {
	var r RNG
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives a new independent generator from r, advancing r.
// The derived stream is seeded from r's output so that sequential Split
// calls produce decorrelated children.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("xrand: Int31n with non-positive n")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to avoid modulo bias.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia–Tsang method
// (with Ahrens-Dieter boosting for shape < 1). shape must be positive.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("xrand: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet fills out with a sample from a symmetric Dirichlet(alpha)
// distribution of dimension len(out). The result sums to 1.
func (r *RNG) Dirichlet(alpha float64, out []float64) {
	var sum float64
	for i := range out {
		g := r.Gamma(alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// Zipf returns an integer in [1, imax] following an (approximate) Zipf
// distribution with exponent s > 1, via inverse-CDF rejection
// (Devroye's method for the Riemann zeta distribution, truncated).
func (r *RNG) Zipf(s float64, imax int) int {
	if s <= 1 {
		panic("xrand: Zipf exponent must exceed 1")
	}
	if imax < 1 {
		panic("xrand: Zipf imax must be at least 1")
	}
	b := math.Pow(2, s-1)
	for {
		u := r.Float64()
		v := r.Float64()
		x := math.Floor(math.Pow(u, -1/(s-1)))
		t := math.Pow(1+1/x, s-1)
		if x <= float64(imax) && v*x*(t-1)/(b-1) <= t/b {
			return int(x)
		}
	}
}
