package repro

import (
	"context"

	"repro/internal/graph"
	"repro/internal/im"
	"repro/internal/learn"
	"repro/internal/xrand"
)

// Classic influence-maximization types (the substrate the paper builds
// on; usable standalone).
type (
	// IMResult reports an influence-maximization run.
	IMResult = im.Result
	// TIMOptions tunes the TIM algorithm.
	TIMOptions = im.TIMOptions
)

// ErrInvalidIMInput marks structurally invalid arguments to the classic
// influence-maximization entry points (k out of range, mismatched cost
// vector, non-positive θ). Cancellation surfaces as the context's own
// error.
var ErrInvalidIMInput = im.ErrInvalidInput

// TIM runs Two-phase Influence Maximization (Tang et al., SIGMOD 2014):
// a (1 − 1/e − ε)-approximate k-seed set via RR-set sampling. The context
// cancels sampling at batch granularity.
func TIM(ctx context.Context, g *Graph, probs []float32, k int, opt TIMOptions, rng *RNG) (IMResult, error) {
	return im.TIM(ctx, g, probs, k, opt, rng)
}

// GreedyIM runs CELF-accelerated greedy influence maximization with
// Monte-Carlo spread estimation (Kempe et al. 2003 + Leskovec et al.
// 2007). The context is checked before every spread evaluation.
func GreedyIM(ctx context.Context, g *Graph, probs []float32, k, runs, workers int, rng *RNG) (IMResult, error) {
	return im.GreedyMC(ctx, g, probs, k, runs, workers, rng)
}

// IMM runs Influence Maximization via Martingales (Tang et al., SIGMOD
// 2015) — TIM's successor with a tighter sample-size search.
func IMM(ctx context.Context, g *Graph, probs []float32, k int, opt TIMOptions, rng *RNG) (IMResult, error) {
	return im.IMM(ctx, g, probs, k, opt, rng)
}

// BudgetedIM solves budgeted influence maximization (linear knapsack on
// node costs) with the max(cost-agnostic, cost-sensitive) greedy — the
// κ_ρ = 0 special case of the paper's Theorems 2–3. Of opt only Workers
// is consulted (the sample size is the explicit theta); opt.Workers <= 1
// is the sequential-identical path.
func BudgetedIM(ctx context.Context, g *Graph, probs []float32, costs []float64, budget float64,
	theta int, opt TIMOptions, rng *RNG) (IMResult, error) {
	return im.BudgetedGreedy(ctx, g, probs, costs, budget, theta, opt, rng)
}

// DegreeSeeds returns the k highest out-degree nodes (baseline heuristic).
func DegreeSeeds(g *Graph, k int) []int32 { return im.Degree(g, k) }

// SingleDiscountSeeds returns k seeds by the single-discount heuristic.
func SingleDiscountSeeds(g *Graph, k int) []int32 { return im.SingleDiscount(g, k) }

// Influence-model learning types (the pipeline behind the paper's
// MLE-learned probabilities).
type (
	// Episode is one observed cascade: (node, time) activations.
	Episode = learn.Episode
	// Activation is a single engagement event.
	Activation = learn.Activation
	// LearnOptions tunes the EM estimator.
	LearnOptions = learn.Options
)

// SimulateEpisodes generates training cascades from a known IC instance.
func SimulateEpisodes(g *Graph, probs []float32, episodes, seedsPerEpisode int, rng *RNG) []Episode {
	return learn.SimulateEpisodes(g, probs, episodes, seedsPerEpisode, rng)
}

// EstimateIC learns IC edge probabilities from episodes via the EM
// estimator of Saito et al. (2008).
func EstimateIC(g *Graph, eps []Episode, opt LearnOptions) []float32 {
	return learn.EstimateIC(g, eps, opt)
}

// CascadeLogLikelihood scores edge probabilities against observed
// episodes (higher is better).
func CascadeLogLikelihood(g *Graph, probs []float32, eps []Episode) float64 {
	return learn.LogLikelihood(g, probs, eps)
}

// Compile-time checks that facade aliases stay interchangeable with their
// internal definitions.
var (
	_ = func(g *graph.Graph) *Graph { return g }
	_ = func(r *xrand.RNG) *RNG { return r }
)
