package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// The end-to-end quickstart: build a tiny synthetic instance of the
// paper's setting, solve it with the scalable cost-sensitive algorithm
// using 2 RR-sampling workers, and sanity-check the allocation. All
// randomness is seed-pinned, so this output is deterministic.
func Example() {
	w, err := repro.NewWorkbench("flixster", repro.Params{
		Scale: repro.ScaleTiny, H: 2, SingletonRuns: 100, SampleWorkers: 2,
	})
	if err != nil {
		fmt.Println("workbench:", err)
		return
	}
	p := w.Problem(repro.Linear, 0.2)

	alloc, stats, err := w.Engine().Solve(context.Background(), p, repro.Options{
		Mode: repro.ModeCostSensitive, Epsilon: 0.3, Seed: 1, MaxThetaPerAd: 20_000,
	})
	if err != nil {
		fmt.Println("solve:", err)
		return
	}

	disjoint := true
	seen := map[int32]bool{}
	for _, seeds := range alloc.Seeds {
		for _, u := range seeds {
			if seen[u] {
				disjoint = false
			}
			seen[u] = true
		}
	}
	fmt.Println("ads:", len(alloc.Seeds))
	fmt.Println("seeded every ad:", alloc.NumSeeds() >= len(alloc.Seeds))
	fmt.Println("seed sets disjoint:", disjoint)
	fmt.Println("sampling workers:", stats.SampleWorkers)
	// Output:
	// ads: 2
	// seeded every ad: true
	// seed sets disjoint: true
	// sampling workers: 2
}

// The Engine lifecycle: construct one Engine per dataset/topic-model,
// then run many solver sessions on it. Sessions share the sampling
// scratch pool and the memoized edge probabilities, honor context
// cancellation, and are safe to issue concurrently; for a fixed Seed each
// session's allocation is bit-identical to the legacy one-shot entry
// points.
func ExampleEngine() {
	w, err := repro.NewWorkbench("flixster", repro.Params{
		Scale: repro.ScaleTiny, H: 2, SingletonRuns: 100,
	})
	if err != nil {
		fmt.Println("workbench:", err)
		return
	}
	p := w.Problem(repro.Linear, 0.2)

	// Construct once (or take the workbench's pre-built one: w.Engine()).
	eng := repro.NewEngine(w.Dataset.Graph, w.Model, repro.EngineOptions{Workers: 1})

	ctx := context.Background()
	opt := repro.Options{
		Mode: repro.ModeCostSensitive, Epsilon: 0.3, Seed: 1, MaxThetaPerAd: 20_000,
	}
	// Solve twice on the same Engine: the second session starts warm and,
	// with the same seed, lands on the identical allocation.
	a1, _, err := eng.Solve(ctx, p, opt)
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	a2, _, err := eng.Solve(ctx, p, opt)
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	ev, err := eng.Evaluate(ctx, p, a1, 500, 2, 1)
	if err != nil {
		fmt.Println("evaluate:", err)
		return
	}
	fmt.Println("sessions agree:", a1.NumSeeds() == a2.NumSeeds() && a1.TotalRevenue() == a2.TotalRevenue())
	everyAdSeeded := true
	for _, seeds := range a1.Seeds {
		if len(seeds) == 0 {
			everyAdSeeded = false
		}
	}
	fmt.Println("every ad seeded:", everyAdSeeded)
	fmt.Println("revenue positive:", ev.TotalRevenue() > 0)
	// Output:
	// sessions agree: true
	// every ad seeded: true
	// revenue positive: true
}
