package repro_test

import (
	"fmt"

	"repro"
)

// The end-to-end quickstart: build a tiny synthetic instance of the
// paper's setting, solve it with the scalable cost-sensitive algorithm
// using 2 RR-sampling workers, and sanity-check the allocation. All
// randomness is seed-pinned, so this output is deterministic.
func Example() {
	w, err := repro.NewWorkbench("flixster", repro.Params{
		Scale: repro.ScaleTiny, H: 2, SingletonRuns: 100, Workers: 2,
	})
	if err != nil {
		fmt.Println("workbench:", err)
		return
	}
	p := w.Problem(repro.Linear, 0.2)

	alloc, stats, err := repro.TICSRM(p, repro.Options{
		Epsilon: 0.3, Seed: 1, MaxThetaPerAd: 20_000, Workers: 2,
	})
	if err != nil {
		fmt.Println("solve:", err)
		return
	}

	disjoint := true
	seen := map[int32]bool{}
	for _, seeds := range alloc.Seeds {
		for _, u := range seeds {
			if seen[u] {
				disjoint = false
			}
			seen[u] = true
		}
	}
	fmt.Println("ads:", len(alloc.Seeds))
	fmt.Println("seeded every ad:", alloc.NumSeeds() >= len(alloc.Seeds))
	fmt.Println("seed sets disjoint:", disjoint)
	fmt.Println("sampling workers:", stats.SampleWorkers)
	// Output:
	// ads: 2
	// seeded every ad: true
	// seed sets disjoint: true
	// sampling workers: 2
}
