// Command rmsolve solves a single revenue-maximization instance and prints
// the allocation: which users endorse which ad, what each advertiser pays,
// and the host's revenue.
//
// Examples:
//
//	rmsolve -dataset=flixster -scale=tiny -h=4 -alg=ti-csrm -kind=linear -alpha=0.2
//	rmsolve -dataset=epinions -scale=small -alg=ti-carm -eps=0.3
//	rmsolve -dataset=dblp -scale=small -alg=pagerank-rr -kind=sublinear -alpha=2
//	rmsolve -snapshot=epinions.snap -h=4 -alg=ti-csrm
//
// -snapshot solves on a binary dataset snapshot (see graphgen
// -format=snapshot) or an edge-list file instead of synthesizing the
// preset; snapshots load the graph and probability model back exactly,
// so repeated studies of one instance skip regeneration entirely.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/incentive"
)

var (
	datasetFl = flag.String("dataset", "flixster", "dataset name (preset or registered file entry)")
	snapFlag  = flag.String("snapshot", "", "solve on a snapshot/edge-list file instead of a synthesized preset (overrides -dataset/-scale)")
	scaleFlag = flag.String("scale", "tiny", "dataset scale: tiny|small|medium|full")
	hFlag     = flag.Int("h", 4, "number of advertisers")
	algFlag   = flag.String("alg", core.DefaultModeName, "algorithm: "+strings.Join(core.ModeNames(), "|"))
	kindFlag  = flag.String("kind", "linear", "incentive model: linear|constant|sublinear|superlinear")
	alpha     = flag.Float64("alpha", 0.2, "incentive scale α (paper's full-scale value)")
	epsFlag   = flag.Float64("eps", 0.1, "estimation accuracy ε")
	window    = flag.Int("window", 0, "TI-CSRM window size (0 = full)")
	seed      = flag.Uint64("seed", 1, "random seed")
	maxTheta  = flag.Int("maxtheta", 0, "cap on RR sets per advertiser (0 = default)")
	topSeeds  = flag.Int("top", 5, "how many seeds to list per ad")
	outPath   = flag.String("out", "", "write the allocation as JSON to this file")
	share     = flag.Bool("share", false, "share RR samples across ads with identical topics")
	workers   = flag.Int("workers", 1, "RR-sampling scratch slots shared by all ads (1 = sequential-identical, machine-independent; 0 = all CPU cores)")
	batch     = flag.Int("batch", 0, "per-worker RR sampling batch size (0 = default; part of the determinism key for workers > 1)")
	shardsFl  = flag.Int("shards", 0, "RR-shard count (0 = unsharded path, 1 = shard layer with bit-identical output, >1 = parallel shards)")
	rssFlag   = flag.Bool("rss", false, "report the process peak RSS (VmHWM) after the solve")
	timeout   = flag.Duration("timeout", 0, "abort the solve after this duration (0 = no limit); Ctrl-C also cancels gracefully")
	progFlag  = flag.Bool("progress", false, "stream solver progress events (θ growth, committed seeds) to stderr")
)

func main() {
	flag.Parse()
	// Ctrl-C / SIGTERM cancel the solve context: the engine returns
	// promptly with ErrCanceled instead of the process dying mid-solve.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx); err != nil {
		if errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "rmsolve: canceled (timeout or interrupt):", err)
		} else {
			fmt.Fprintln(os.Stderr, "rmsolve:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	scale, err := gen.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	kind, err := incentive.ParseKind(*kindFlag)
	if err != nil {
		return err
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.NumCPU()
	}
	params := eval.Params{Scale: scale, Seed: *seed, H: *hFlag, Epsilon: *epsFlag,
		Window: *window, MaxThetaPerAd: *maxTheta, SampleWorkers: nw, SampleBatch: *batch,
		Shards: *shardsFl}
	name := *datasetFl
	if *snapFlag != "" {
		// Register the file under its own path so the workbench resolves
		// it through the shared registry like any other dataset name. A
		// collision (e.g. a file literally named "dblp") is an error —
		// silently resolving the synthetic preset instead of the user's
		// file would solve a different graph.
		name = *snapFlag
		if err := dataset.Default.RegisterFile(name, *snapFlag); err != nil {
			return err
		}
	}
	w, err := eval.NewWorkbench(name, params)
	if err != nil {
		return err
	}
	p := w.Problem(kind, *alpha)
	opt := core.Options{Epsilon: *epsFlag, Window: *window, Seed: *seed,
		MaxThetaPerAd: *maxTheta, ShareSamples: *share}
	if *progFlag {
		opt.Progress = func(ev core.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "  [%s] ad=%d theta=%d seeds=%d revenue=%.1f\n",
				ev.Kind, ev.Ad, ev.Theta, ev.Seeds, ev.TotalRevenue)
		}
	}

	// One Engine per dataset/model: the workbench already constructed it
	// with this run's -workers/-batch; every solve and evaluation below is
	// a session on it. Algorithm dispatch is registry-driven: the mode's
	// capability flags decide the auxiliary inputs, so this CLI never
	// grows another switch when an algorithm lands.
	eng := w.Engine()
	mode, err := core.ParseMode(*algFlag)
	if err != nil {
		return err
	}
	info, _ := core.ModeInfo(mode)
	opt.Mode = mode
	if info.NeedsPRScores {
		opt.PRScores = baseline.ScoresForProblem(p, baseline.PageRankOptions{})
	}
	alloc, stats, err := eng.Solve(ctx, p, opt)
	if err != nil {
		if stats != nil && errors.Is(err, core.ErrCanceled) {
			fmt.Fprintf(os.Stderr, "partial work before cancellation: %d RR sets in %v\n",
				stats.TotalRRSets, stats.Duration.Round(1e6))
		}
		return fmt.Errorf("solve failed: %w", err)
	}
	// MC evaluation keeps its historical fixed 2-way split: -workers tunes
	// RR sampling only, so evaluated revenue stays machine-independent.
	ev, err := eng.Evaluate(ctx, p, alloc, 2000, 2, *seed^0xabcdef)
	if err != nil {
		return fmt.Errorf("evaluation failed: %w", err)
	}

	throughput := 0.0
	if s := stats.Duration.Seconds(); s > 0 {
		throughput = float64(stats.TotalRRSets) / s
	}
	fmt.Printf("dataset=%s scale=%s nodes=%d edges=%d h=%d alg=%s kind=%s alpha=%g eps=%g\n",
		w.Dataset.Name, scale, p.Graph.NumNodes(), p.Graph.NumEdges(), *hFlag,
		info.Name, kind, *alpha, *epsFlag)
	fmt.Printf("solved in %v; %d RR sets, %.1f MB RR memory + %.1f MB sampler scratch, %d workers, %d shards, %.0f RR sets/sec\n",
		stats.Duration.Round(1e6), stats.TotalRRSets,
		float64(stats.RRMemoryBytes)/(1<<20),
		float64(stats.SamplerMemoryBytes)/(1<<20), stats.SampleWorkers, stats.Shards, throughput)
	if mmapped := dataset.MmapActiveBytes(); mmapped > 0 {
		fmt.Printf("snapshot mmapped zero-copy: %.1f MB\n", float64(mmapped)/(1<<20))
	}
	if *rssFlag {
		fmt.Printf("peak RSS (VmHWM): %.1f MB\n", float64(eval.PeakRSSBytes())/(1<<20))
	}
	fmt.Println()

	for i := range alloc.Seeds {
		fmt.Printf("ad %d: budget=%.1f cpe=%.2f seeds=%d\n",
			i, p.Ads[i].Budget, p.Ads[i].CPE, len(alloc.Seeds[i]))
		fmt.Printf("  revenue=%.1f seed-cost=%.1f payment=%.1f (MC-evaluated)\n",
			ev.Revenue[i], ev.SeedCost[i], ev.Payment[i])
		show := len(alloc.Seeds[i])
		if show > *topSeeds {
			show = *topSeeds
		}
		for j := 0; j < show; j++ {
			u := alloc.Seeds[i][j]
			fmt.Printf("    seed %d: incentive=%.2f out-degree=%d\n",
				u, p.Incentives[i].Cost(u), p.Graph.OutDegree(u))
		}
		if len(alloc.Seeds[i]) > show {
			fmt.Printf("    ... and %d more\n", len(alloc.Seeds[i])-show)
		}
	}
	fmt.Printf("\nTOTAL revenue=%.1f seed-cost=%.1f payment=%.1f seeds=%d\n",
		ev.TotalRevenue(), ev.TotalSeedCost(),
		ev.TotalRevenue()+ev.TotalSeedCost(), alloc.NumSeeds())
	if *outPath != "" {
		if err := core.SaveAllocation(*outPath, alloc); err != nil {
			return err
		}
		fmt.Printf("allocation written to %s\n", *outPath)
	}
	return nil
}
