// Command graphgen generates synthetic social graphs — either the paper's
// dataset presets or raw generator families — and writes them as edge-list
// files readable by graph.LoadEdgeList.
//
// Examples:
//
//	graphgen -preset=flixster -scale=small -out=flixster.txt
//	graphgen -model=rmat -n=100000 -m=1000000 -out=rmat.txt
//	graphgen -model=ba -n=50000 -k=3 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

var (
	preset    = flag.String("preset", "", "dataset preset: flixster|epinions|dblp|livejournal")
	scaleFlag = flag.String("scale", "small", "preset scale: tiny|small|medium|full")
	model     = flag.String("model", "", "raw generator: er|ba|ws|rmat|powerlaw")
	nFlag     = flag.Int("n", 10000, "number of nodes (raw generators)")
	mFlag     = flag.Int("m", 100000, "number of arcs (er, rmat)")
	kFlag     = flag.Int("k", 3, "attachment/lattice degree (ba, ws)")
	beta      = flag.Float64("beta", 0.1, "rewiring probability (ws)")
	exponent  = flag.Float64("exponent", 2.0, "power-law exponent (powerlaw)")
	maxDeg    = flag.Int("maxdeg", 1000, "max out-degree (powerlaw)")
	seed      = flag.Uint64("seed", 1, "random seed")
	out       = flag.String("out", "", "output edge-list path (default: stdout)")
	stats     = flag.Bool("stats", false, "print degree statistics to stderr")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func build() (*graph.Graph, error) {
	rng := xrand.New(*seed)
	if *preset != "" {
		scale, err := gen.ParseScale(*scaleFlag)
		if err != nil {
			return nil, err
		}
		ds, err := gen.ByName(*preset, scale, rng)
		if err != nil {
			return nil, err
		}
		return ds.Graph, nil
	}
	n := int32(*nFlag)
	switch *model {
	case "er":
		return gen.ErdosRenyi(n, *mFlag, rng), nil
	case "ba":
		return gen.BarabasiAlbert(n, *kFlag, rng), nil
	case "ws":
		return gen.WattsStrogatz(n, *kFlag, *beta, rng), nil
	case "rmat":
		return gen.RMAT(n, *mFlag, gen.DefaultRMAT, rng), nil
	case "powerlaw":
		return gen.PowerLawConfiguration(n, *exponent, *maxDeg, rng), nil
	case "":
		return nil, fmt.Errorf("either -preset or -model is required")
	}
	return nil, fmt.Errorf("unknown model %q", *model)
}

func run() error {
	g, err := build()
	if err != nil {
		return err
	}
	if *stats {
		s := g.Stats()
		fmt.Fprintf(os.Stderr,
			"nodes=%d edges=%d max-out=%d max-in=%d mean-out=%.2f sinks=%d sources=%d\n",
			g.NumNodes(), g.NumEdges(), s.MaxOut, s.MaxIn, s.MeanOut, s.ZeroOut, s.ZeroIn)
	}
	if *out == "" {
		return graph.WriteEdgeList(os.Stdout, g)
	}
	return graph.SaveEdgeList(*out, g)
}
