// Command graphgen generates synthetic social graphs — either the paper's
// dataset presets or raw generator families — and writes them as edge-list
// files readable by dataset.LoadEdgeList or, with -format=snapshot, as
// binary dataset snapshots (graph + influence-probability model in one
// file) that rmsolve/rmbench load back without regenerating anything.
//
// Examples:
//
//	graphgen -preset=flixster -scale=small -out=flixster.txt
//	graphgen -dataset=epinions -scale=medium -format=snapshot -out=epinions.snap
//	graphgen -model=rmat -n=100000 -m=1000000 -out=rmat.txt.gz
//	graphgen -model=ba -n=50000 -k=3 -stats
//
// A preset snapshot freezes exactly the graph and probability model the
// experiment harness would synthesize for the same (preset, scale,
// seed): `rmsolve -snapshot=epinions.snap` solves on bit-identical
// network structures. Advertiser rosters and budget draws are not
// frozen by graphgen — the harness re-draws them on its snapshot path —
// so to pin a complete instance including ads, embed a roster with the
// library's dataset.SnapshotOf/Save.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/topic"
	"repro/internal/xrand"
)

var (
	preset    = flag.String("preset", "", "dataset preset: flixster|epinions|dblp|livejournal")
	datasetFl = flag.String("dataset", "", "alias for -preset (matches the solver CLIs)")
	scaleFlag = flag.String("scale", "small", "preset scale: tiny|small|medium|full")
	model     = flag.String("model", "", "raw generator: er|ba|ws|rmat|powerlaw")
	nFlag     = flag.Int("n", 10000, "number of nodes (raw generators)")
	mFlag     = flag.Int("m", 100000, "number of arcs (er, rmat)")
	kFlag     = flag.Int("k", 3, "attachment/lattice degree (ba, ws)")
	beta      = flag.Float64("beta", 0.1, "rewiring probability (ws)")
	exponent  = flag.Float64("exponent", 2.0, "power-law exponent (powerlaw)")
	maxDeg    = flag.Int("maxdeg", 1000, "max out-degree (powerlaw)")
	seed      = flag.Uint64("seed", 1, "random seed")
	format    = flag.String("format", "edgelist", "output format: edgelist|snapshot")
	out       = flag.String("out", "", "output path (default: stdout; edge lists gzip when it ends in .gz)")
	stats     = flag.Bool("stats", false, "print degree statistics to stderr")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

// build synthesizes the requested source: a registry preset (graph plus
// its quality-run model) or a raw generator graph wrapped with
// weighted-cascade probabilities so it is snapshot-complete.
func build() (*dataset.Source, error) {
	rng := xrand.New(*seed)
	name := *preset
	if name == "" {
		name = *datasetFl
	}
	if name != "" {
		scale, err := gen.ParseScale(*scaleFlag)
		if err != nil {
			return nil, err
		}
		return dataset.Default.Open(name, scale, rng)
	}
	n := int32(*nFlag)
	var g *graph.Graph
	switch *model {
	case "er":
		g = gen.ErdosRenyi(n, *mFlag, rng)
	case "ba":
		g = gen.BarabasiAlbert(n, *kFlag, rng)
	case "ws":
		g = gen.WattsStrogatz(n, *kFlag, *beta, rng)
	case "rmat":
		g = gen.RMAT(n, *mFlag, gen.DefaultRMAT, rng)
	case "powerlaw":
		g = gen.PowerLawConfiguration(n, *exponent, *maxDeg, rng)
	case "":
		return nil, fmt.Errorf("either -preset/-dataset or -model is required")
	default:
		return nil, fmt.Errorf("unknown model %q", *model)
	}
	return &dataset.Source{
		Dataset: gen.Dataset{Name: *model, Graph: g, Directed: true, ProbModel: gen.ProbWC},
		Model:   topic.NewWeightedCascade(g),
	}, nil
}

func run() error {
	src, err := build()
	if err != nil {
		return err
	}
	g := src.Dataset.Graph
	if *stats {
		s := g.Stats()
		fmt.Fprintf(os.Stderr,
			"nodes=%d edges=%d max-out=%d max-in=%d mean-out=%.2f sinks=%d sources=%d\n",
			g.NumNodes(), g.NumEdges(), s.MaxOut, s.MaxIn, s.MeanOut, s.ZeroOut, s.ZeroIn)
	}
	switch *format {
	case "edgelist":
		if *out == "" {
			return graph.WriteEdgeList(os.Stdout, g)
		}
		return dataset.SaveEdgeList(*out, g)
	case "snapshot":
		snap := dataset.SnapshotOf(src, nil)
		if *out == "" {
			return dataset.Write(os.Stdout, snap)
		}
		return dataset.Save(*out, snap)
	}
	return fmt.Errorf("unknown format %q (want edgelist|snapshot)", *format)
}
