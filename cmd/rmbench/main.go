// Command rmbench regenerates the paper's tables and figures.
//
// Each experiment ID corresponds to one artifact of the paper's evaluation
// (Section 5); DESIGN.md §5 maps IDs to workloads and modules. Examples:
//
//	rmbench -experiment=table1
//	rmbench -experiment=fig2 -scale=small -datasets=flixster,epinions
//	rmbench -experiment=fig5a -scale=medium -csv=fig5a.csv
//	rmbench -experiment=all -scale=tiny
//
// Scale "full" reproduces the paper's dataset sizes (hours of runtime and
// tens of GB of memory, as in the paper); "small" (default) is 1/16 size.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/incentive"
)

var (
	experiment = flag.String("experiment", "all", "experiment ID: table1|table2|table3|fig1|fig2|fig3|fig4|fig5a|fig5b|fig5c|fig5d|all")
	scaleFlag  = flag.String("scale", "small", "dataset scale: tiny|small|medium|full")
	seed       = flag.Uint64("seed", 1, "random seed")
	hFlag      = flag.Int("h", 10, "number of advertisers (quality experiments)")
	epsFlag    = flag.Float64("eps", 0, "estimation accuracy ε (0 = per-experiment default: 0.1 quality, 0.3 scalability)")
	alphaPts   = flag.Int("alphas", 5, "number of α grid points (figures 2-3)")
	datasets   = flag.String("datasets", "flixster,epinions", "quality datasets (comma separated)")
	kindsFlag  = flag.String("kinds", "linear,constant,sublinear,superlinear", "incentive models for fig2/fig3")
	maxTheta   = flag.Int("maxtheta", 0, "cap on RR sets per advertiser (0 = default 3M)")
	mcEval     = flag.Int("mceval", 2000, "Monte-Carlo runs for allocation evaluation")
	singleRuns = flag.Int("singletons", 500, "Monte-Carlo runs for singleton spreads (paper: 5000)")
	windowsStr = flag.String("windows", "1,50,100,250,500,1000,2500,5000,0", "fig4 window sizes (0 = full)")
	hSweepStr  = flag.String("hsweep", "1,5,10,15,20", "fig5a/b advertiser counts")
	csvPath    = flag.String("csv", "", "also write results as CSV to this file")
	quiet      = flag.Bool("quiet", false, "suppress progress output")
	workers    = flag.Int("workers", 1, "RR-sampling scratch slots shared by all ads per run (0 = all CPU cores; 1 = sequential-identical, the paper's setting)")
	batch      = flag.Int("batch", 0, "per-worker RR sampling batch size (0 = default; part of the determinism key for workers > 1)")
	timeout    = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit); Ctrl-C also cancels gracefully")
)

func main() {
	flag.Parse()
	// Ctrl-C / SIGTERM cancel the experiment contexts; solves in flight
	// return promptly with partial stats instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx); err != nil {
		if errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "rmbench: canceled (timeout or interrupt):", err)
		} else {
			fmt.Fprintln(os.Stderr, "rmbench:", err)
		}
		os.Exit(1)
	}
}

func params() (eval.Params, error) {
	scale, err := gen.ParseScale(*scaleFlag)
	if err != nil {
		return eval.Params{}, err
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.NumCPU()
	}
	return eval.Params{
		Scale:         scale,
		Seed:          *seed,
		H:             *hFlag,
		Epsilon:       *epsFlag,
		MaxThetaPerAd: *maxTheta,
		MCEvalRuns:    *mcEval,
		SingletonRuns: *singleRuns,
		AlphaPoints:   *alphaPts,
		SampleWorkers: nw,
		SampleBatch:   *batch,
	}, nil
}

func progress() func(string) {
	if *quiet {
		return nil
	}
	return func(msg string) { fmt.Fprintln(os.Stderr, "  ...", msg) }
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseKinds(s string) ([]incentive.Kind, error) {
	var out []incentive.Kind
	for _, f := range strings.Split(s, ",") {
		k, err := incentive.ParseKind(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func emit(tables ...*eval.Table) error {
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, t := range tables {
			if _, err := fmt.Fprintf(f, "# %s\n", t.Title); err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				return err
			}
		}
	}
	return nil
}

func run(ctx context.Context) error {
	p, err := params()
	if err != nil {
		return err
	}
	ids := []string{*experiment}
	if *experiment == "all" {
		// fig2+fig3 share one QualitySweep via the combined ID.
		ids = []string{"table1", "table2", "fig1", "fig2+fig3", "fig4",
			"fig5a", "fig5b", "fig5c", "fig5d", "table3"}
	}
	for _, id := range ids {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== running %s (scale=%s, workers=%d) ==\n",
				id, p.Scale, p.SampleWorkers)
		}
		if err := runOne(ctx, id, p); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

func runOne(ctx context.Context, id string, p eval.Params) error {
	switch id {
	case "table1":
		t, err := eval.DatasetStats(p)
		if err != nil {
			return err
		}
		return emit(t)

	case "table2":
		t, err := eval.BudgetStats(p)
		if err != nil {
			return err
		}
		return emit(t)

	case "fig1":
		t, err := eval.Fig1Report()
		if err != nil {
			return err
		}
		return emit(t)

	case "fig2", "fig3", "fig2+fig3":
		ds := strings.Split(*datasets, ",")
		kinds, err := parseKinds(*kindsFlag)
		if err != nil {
			return err
		}
		cells, err := eval.QualitySweep(ctx, ds, kinds, eval.PaperAlgorithms(), p, progress())
		if err != nil {
			return err
		}
		switch id {
		case "fig2":
			return emit(eval.RevenueVsAlphaTable(cells, eval.PaperAlgorithms()))
		case "fig3":
			return emit(eval.SeedCostVsAlphaTable(cells, eval.PaperAlgorithms()))
		}
		return emit(eval.RevenueVsAlphaTable(cells, eval.PaperAlgorithms()),
			eval.SeedCostVsAlphaTable(cells, eval.PaperAlgorithms()))

	case "fig4":
		windows, err := parseInts(*windowsStr)
		if err != nil {
			return err
		}
		var tables []*eval.Table
		for _, ds := range strings.Split(*datasets, ",") {
			points, err := eval.WindowTradeoff(ctx, ds, []float64{0.2, 0.5}, windows, p, progress())
			if err != nil {
				return err
			}
			tables = append(tables, eval.WindowTradeoffTable(points))
		}
		return emit(tables...)

	case "fig5a", "fig5b", "table3":
		hs, err := parseInts(*hSweepStr)
		if err != nil {
			return err
		}
		dataset, budget := "dblp", 10_000.0
		if id == "fig5b" {
			dataset, budget = "livejournal", 100_000.0
		}
		points, err := eval.ScalabilityAdvertisers(ctx, dataset, hs, budget, p, progress())
		if err != nil {
			return err
		}
		if id == "table3" {
			// Table 3 reports both datasets; run LIVEJOURNAL too.
			pointsLJ, err := eval.ScalabilityAdvertisers(ctx, "livejournal", hs, 100_000, p, progress())
			if err != nil {
				return err
			}
			return emit(eval.MemoryTable(points), eval.MemoryTable(pointsLJ))
		}
		return emit(eval.RuntimeTable(points, "advertisers"))

	case "fig5c", "fig5d":
		dataset := "dblp"
		budgets := []float64{5_000, 10_000, 15_000, 20_000, 25_000, 30_000}
		if id == "fig5d" {
			dataset = "livejournal"
			budgets = []float64{50_000, 100_000, 150_000, 200_000, 250_000}
		}
		points, err := eval.ScalabilityBudget(ctx, dataset, budgets, p, progress())
		if err != nil {
			return err
		}
		return emit(eval.RuntimeTable(points, "budget"))

	case "ablation-competition":
		var tables []*eval.Table
		for _, ds := range strings.Split(*datasets, ",") {
			t, err := eval.CompetitionAblation(ctx, ds, 0.3, p, progress())
			if err != nil {
				return err
			}
			tables = append(tables, t)
		}
		return emit(tables...)

	case "ablation-sharing":
		hs, err := parseInts(*hSweepStr)
		if err != nil {
			return err
		}
		t, err := eval.SharingAblation(ctx, "epinions", hs, p, progress())
		if err != nil {
			return err
		}
		return emit(t)
	}
	return fmt.Errorf("unknown experiment %q", id)
}
