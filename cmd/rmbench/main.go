// Command rmbench regenerates the paper's tables and figures.
//
// Each experiment ID corresponds to one artifact of the paper's evaluation
// (Section 5); DESIGN.md §5 maps IDs to workloads and modules. Examples:
//
//	rmbench -experiment=table1
//	rmbench -experiment=fig2 -scale=small -datasets=flixster,epinions
//	rmbench -experiment=fig5a -scale=medium -csv=fig5a.csv
//	rmbench -experiment=all -scale=tiny
//
// Scale "full" reproduces the paper's dataset sizes (hours of runtime and
// tens of GB of memory, as in the paper); "small" (default) is 1/16 size.
//
// Dataset names are resolved through the shared registry: the synthetic
// presets plus any file-backed entries registered with -snapshot
// (`-snapshot=mygraph=path.snap` makes "mygraph" usable in -datasets).
//
// With -json, rmbench also emits a machine-readable benchmark report
// (schema documented in docs/bench-schema.md): per-experiment wall
// times, every table, and per-run performance counters (RR-set counts,
// RR-store and sampler memory, revenue). CI archives one report per
// commit as the BENCH_${GITHUB_SHA}.json artifact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/incentive"
)

var (
	experiment = flag.String("experiment", "all", "experiment IDs (comma separated): table1|table2|table3|fig1|fig2|fig3|fig4|fig5a|fig5b|fig5c|fig5d|shards|frontier|all")
	scaleFlag  = flag.String("scale", "small", "dataset scale: tiny|small|medium|full")
	seed       = flag.Uint64("seed", 1, "random seed")
	hFlag      = flag.Int("h", 10, "number of advertisers (quality experiments)")
	epsFlag    = flag.Float64("eps", 0, "estimation accuracy ε (0 = per-experiment default: 0.1 quality, 0.3 scalability)")
	alphaPts   = flag.Int("alphas", 5, "number of α grid points (figures 2-3)")
	datasets   = flag.String("datasets", "flixster,epinions", "quality datasets (comma separated, resolved in the dataset registry)")
	kindsFlag  = flag.String("kinds", "linear,constant,sublinear,superlinear", "incentive models for fig2/fig3")
	maxTheta   = flag.Int("maxtheta", 0, "cap on RR sets per advertiser (0 = default 3M)")
	mcEval     = flag.Int("mceval", 2000, "Monte-Carlo runs for allocation evaluation")
	singleRuns = flag.Int("singletons", 500, "Monte-Carlo runs for singleton spreads (paper: 5000)")
	windowsStr = flag.String("windows", "1,50,100,250,500,1000,2500,5000,0", "fig4 window sizes (0 = full)")
	hSweepStr  = flag.String("hsweep", "1,5,10,15,20", "fig5a/b advertiser counts")
	csvPath    = flag.String("csv", "", "also write results as CSV to this file")
	jsonPath   = flag.String("json", "", "write the machine-readable benchmark report to this file ('-' = stdout); see docs/bench-schema.md")
	gitSHA     = flag.String("gitsha", "", "git commit SHA recorded in the -json report")
	gitDate    = flag.String("gitdate", "", "git commit date recorded in the -json report")
	snapFlag   = flag.String("snapshot", "", "register file-backed datasets as comma-separated name=path entries (snapshot or edge-list files)")
	quiet      = flag.Bool("quiet", false, "suppress progress output")
	workers    = flag.Int("workers", 1, "RR-sampling scratch slots shared by all ads per run (0 = all CPU cores; 1 = sequential-identical, the paper's setting)")
	batch      = flag.Int("batch", 0, "per-worker RR sampling batch size (0 = default; part of the determinism key for workers > 1)")
	shardsFl   = flag.Int("shards", 0, "RR-shard count for every experiment engine (0 = unsharded path)")
	shardSweep = flag.String("shardsweep", "1,2,4", "shard counts for -experiment=shards")
	timeout    = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit); Ctrl-C also cancels gracefully")
)

func main() {
	flag.Parse()
	// Ctrl-C / SIGTERM cancel the experiment contexts; solves in flight
	// return promptly with partial stats instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx); err != nil {
		if errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "rmbench: canceled (timeout or interrupt):", err)
		} else {
			fmt.Fprintln(os.Stderr, "rmbench:", err)
		}
		os.Exit(1)
	}
}

func params() (eval.Params, error) {
	scale, err := gen.ParseScale(*scaleFlag)
	if err != nil {
		return eval.Params{}, err
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.NumCPU()
	}
	return eval.Params{
		Scale:         scale,
		Seed:          *seed,
		H:             *hFlag,
		Epsilon:       *epsFlag,
		MaxThetaPerAd: *maxTheta,
		MCEvalRuns:    *mcEval,
		SingletonRuns: *singleRuns,
		AlphaPoints:   *alphaPts,
		SampleWorkers: nw,
		SampleBatch:   *batch,
		Shards:        *shardsFl,
	}, nil
}

func progress() func(string) {
	if *quiet {
		return nil
	}
	return func(msg string) { fmt.Fprintln(os.Stderr, "  ...", msg) }
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseKinds(s string) ([]incentive.Kind, error) {
	var out []incentive.Kind
	for _, f := range strings.Split(s, ",") {
		k, err := incentive.ParseKind(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// registerSnapshots adds the -snapshot name=path entries to the shared
// registry before any dataset name is resolved or validated.
func registerSnapshots(spec string) error {
	if spec == "" {
		return nil
	}
	for _, entry := range strings.Split(spec, ",") {
		name, path, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -snapshot entry %q (want name=path)", entry)
		}
		if err := dataset.Default.RegisterFile(name, path); err != nil {
			return err
		}
	}
	return nil
}

// datasetList validates the -datasets flag against the registry: an
// unknown name is an error up front, not a silently skipped sweep.
func datasetList() ([]string, error) {
	var names []string
	for _, f := range strings.Split(*datasets, ",") {
		name := strings.TrimSpace(f)
		if name == "" {
			continue
		}
		if !dataset.Default.Has(name) {
			return nil, fmt.Errorf("-datasets: %w", dataset.Default.UnknownDatasetError(name))
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-datasets names no datasets")
	}
	return names, nil
}

// result is one experiment's artifacts: rendered tables plus the per-run
// measurements (when the experiment produces them) for the JSON report.
type result struct {
	tables []*eval.Table
	runs   []eval.BenchRun
}

func run(ctx context.Context) error {
	if err := registerSnapshots(*snapFlag); err != nil {
		return err
	}
	p, err := params()
	if err != nil {
		return err
	}
	if _, err := datasetList(); err != nil {
		return err
	}
	// -experiment accepts a comma-separated list, run in order into one
	// report (CI combines fig5a,shards this way); "all" expands to the
	// paper's full artifact set.
	var ids []string
	for _, id := range strings.Split(*experiment, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("-experiment names no experiments")
	}
	if *experiment == "all" {
		// fig2+fig3 share one QualitySweep via the combined ID.
		ids = []string{"table1", "table2", "fig1", "fig2+fig3", "fig4",
			"fig5a", "fig5b", "fig5c", "fig5d", "table3"}
	}

	// One CSV file for the whole run: historically each experiment
	// re-created (and so truncated) the file, leaving only the last
	// experiment's rows. Closed explicitly below so a failed flush (e.g.
	// ENOSPC) fails the run instead of publishing a truncated artifact.
	var csvFile *os.File
	if *csvPath != "" {
		csvFile, err = os.Create(*csvPath)
		if err != nil {
			return err
		}
	}
	closeCSV := func() error {
		if csvFile == nil {
			return nil
		}
		f := csvFile
		csvFile = nil
		return f.Close()
	}
	defer closeCSV()
	var report *eval.BenchReport
	if *jsonPath != "" {
		report = eval.NewBenchReport(p, *gitSHA, *gitDate)
	}

	for _, id := range ids {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== running %s (scale=%s, workers=%d) ==\n",
				id, p.Scale, p.SampleWorkers)
		}
		start := time.Now()
		res, err := runOne(ctx, id, p)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		wall := time.Since(start)
		for _, t := range res.tables {
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			if csvFile != nil {
				if _, err := fmt.Fprintf(csvFile, "# %s\n", t.Title); err != nil {
					return err
				}
				if err := t.WriteCSV(csvFile); err != nil {
					return err
				}
			}
		}
		if report != nil {
			report.AddExperiment(id, wall, res.tables, res.runs)
		}
	}

	if err := closeCSV(); err != nil {
		return fmt.Errorf("writing -csv file: %w", err)
	}
	if report != nil {
		// Stamped last: VmHWM is monotone, so this is the whole run's
		// memory ceiling (the mmap-vs-copy comparison number).
		report.PeakRSSBytes = eval.PeakRSSBytes()
		if *jsonPath == "-" {
			if err := report.WriteJSON(os.Stdout); err != nil {
				return fmt.Errorf("writing -json report: %w", err)
			}
			return nil
		}
		// Close errors matter here: a truncated BENCH_*.json artifact
		// (e.g. ENOSPC on the CI runner) must fail the job, not upload.
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("writing -json report: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing -json report: %w", err)
		}
	}
	return nil
}

func runOne(ctx context.Context, id string, p eval.Params) (result, error) {
	switch id {
	case "table1":
		t, err := eval.DatasetStats(p)
		if err != nil {
			return result{}, err
		}
		return result{tables: []*eval.Table{t}}, nil

	case "table2":
		t, err := eval.BudgetStats(p)
		if err != nil {
			return result{}, err
		}
		return result{tables: []*eval.Table{t}}, nil

	case "fig1":
		t, err := eval.Fig1Report()
		if err != nil {
			return result{}, err
		}
		return result{tables: []*eval.Table{t}}, nil

	case "fig2", "fig3", "fig2+fig3":
		ds, err := datasetList()
		if err != nil {
			return result{}, err
		}
		kinds, err := parseKinds(*kindsFlag)
		if err != nil {
			return result{}, err
		}
		cells, err := eval.QualitySweep(ctx, ds, kinds, eval.PaperAlgorithms(), p, progress())
		if err != nil {
			return result{}, err
		}
		var runs []eval.BenchRun
		for _, cell := range cells {
			for _, alg := range eval.PaperAlgorithms() {
				runs = append(runs, eval.BenchRunOf(cell.Results[alg]))
			}
		}
		var tables []*eval.Table
		switch id {
		case "fig2":
			tables = []*eval.Table{eval.RevenueVsAlphaTable(cells, eval.PaperAlgorithms())}
		case "fig3":
			tables = []*eval.Table{eval.SeedCostVsAlphaTable(cells, eval.PaperAlgorithms())}
		default:
			tables = []*eval.Table{
				eval.RevenueVsAlphaTable(cells, eval.PaperAlgorithms()),
				eval.SeedCostVsAlphaTable(cells, eval.PaperAlgorithms()),
			}
		}
		return result{tables: tables, runs: runs}, nil

	case "fig4":
		windows, err := parseInts(*windowsStr)
		if err != nil {
			return result{}, err
		}
		ds, err := datasetList()
		if err != nil {
			return result{}, err
		}
		var res result
		for _, name := range ds {
			points, err := eval.WindowTradeoff(ctx, name, []float64{0.2, 0.5}, windows, p, progress())
			if err != nil {
				return result{}, err
			}
			res.tables = append(res.tables, eval.WindowTradeoffTable(points))
			for _, pt := range points {
				res.runs = append(res.runs, eval.BenchRun{
					Dataset: pt.Dataset, Algorithm: eval.AlgTICSRM.String(),
					Kind: incentive.Linear.String(), Alpha: pt.Alpha,
					H: p.H, Window: pt.Window, Revenue: pt.Revenue,
					WallSeconds: pt.Duration.Seconds(), SampleWorkers: p.SampleWorkers,
				})
			}
		}
		return res, nil

	case "fig5a", "fig5b", "table3":
		hs, err := parseInts(*hSweepStr)
		if err != nil {
			return result{}, err
		}
		name, budget := "dblp", 10_000.0
		if id == "fig5b" {
			name, budget = "livejournal", 100_000.0
		}
		points, err := eval.ScalabilityAdvertisers(ctx, name, hs, budget, p, progress())
		if err != nil {
			return result{}, err
		}
		runs := scaleRuns(points)
		if id == "table3" {
			// Table 3 reports both datasets; run LIVEJOURNAL too.
			pointsLJ, err := eval.ScalabilityAdvertisers(ctx, "livejournal", hs, 100_000, p, progress())
			if err != nil {
				return result{}, err
			}
			return result{
				tables: []*eval.Table{eval.MemoryTable(points), eval.MemoryTable(pointsLJ)},
				runs:   append(runs, scaleRuns(pointsLJ)...),
			}, nil
		}
		return result{tables: []*eval.Table{eval.RuntimeTable(points, "advertisers")}, runs: runs}, nil

	case "fig5c", "fig5d":
		name := "dblp"
		budgets := []float64{5_000, 10_000, 15_000, 20_000, 25_000, 30_000}
		if id == "fig5d" {
			name = "livejournal"
			budgets = []float64{50_000, 100_000, 150_000, 200_000, 250_000}
		}
		points, err := eval.ScalabilityBudget(ctx, name, budgets, p, progress())
		if err != nil {
			return result{}, err
		}
		return result{
			tables: []*eval.Table{eval.RuntimeTable(points, "budget")},
			runs:   scaleRuns(points),
		}, nil

	case "shards":
		counts, err := parseInts(*shardSweep)
		if err != nil {
			return result{}, err
		}
		points, err := eval.ShardScaling(ctx, "dblp", 10_000, counts, p, progress())
		if err != nil {
			return result{}, err
		}
		return result{
			tables: []*eval.Table{eval.ShardScalingTable(points)},
			runs:   scaleRuns(points),
		}, nil

	case "frontier":
		ds, err := datasetList()
		if err != nil {
			return result{}, err
		}
		points, err := eval.Frontier(ctx, ds, p, progress())
		if err != nil {
			return result{}, err
		}
		// One table per dataset so each frontier reads as its own figure.
		var res result
		for _, name := range ds {
			var sub []eval.FrontierPoint
			for _, pt := range points {
				if pt.Dataset == name {
					sub = append(sub, pt)
				}
			}
			res.tables = append(res.tables, eval.FrontierTable(sub))
		}
		res.runs = eval.FrontierRuns(points, p)
		return res, nil

	case "ablation-competition":
		ds, err := datasetList()
		if err != nil {
			return result{}, err
		}
		var tables []*eval.Table
		for _, name := range ds {
			t, err := eval.CompetitionAblation(ctx, name, 0.3, p, progress())
			if err != nil {
				return result{}, err
			}
			tables = append(tables, t)
		}
		return result{tables: tables}, nil

	case "ablation-sharing":
		hs, err := parseInts(*hSweepStr)
		if err != nil {
			return result{}, err
		}
		t, err := eval.SharingAblation(ctx, "epinions", hs, p, progress())
		if err != nil {
			return result{}, err
		}
		return result{tables: []*eval.Table{t}}, nil
	}
	return result{}, fmt.Errorf("unknown experiment %q", id)
}

func scaleRuns(points []eval.ScalePoint) []eval.BenchRun {
	runs := make([]eval.BenchRun, len(points))
	for i, pt := range points {
		runs[i] = eval.BenchRunOfScale(pt)
	}
	return runs
}
