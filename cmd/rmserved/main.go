// Command rmserved is the long-running solver service: an HTTP daemon
// holding one warm solver engine per dataset and serving concurrent
// allocation sessions with admission control, a bit-identical result
// cache, Prometheus metrics, and graceful drain on SIGTERM.
//
// Examples:
//
//	rmserved -addr=127.0.0.1:7600 -scale=tiny
//	rmserved -datasets=flixster,epinions -warm -workers=1
//
//	curl -s localhost:7600/v1/datasets
//	curl -s -XPOST localhost:7600/v1/solve -d '{"dataset":"flixster","h":4,"mode":"ti-csrm"}'
//	curl -s -XPOST localhost:7600/v1/mutate -d '{"dataset":"flixster","add_edges":[{"u":1,"v":2}]}'
//	curl -s localhost:7600/metrics
//
// On SIGTERM (or SIGINT) the daemon stops admitting sessions, finishes
// or cancels in-flight work within -drain, and exits 0. See
// docs/serving.md for the API reference.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/wal"
)

var (
	addr       = flag.String("addr", "127.0.0.1:7600", "listen address (host:port; port 0 picks a free port)")
	scaleFlag  = flag.String("scale", "tiny", "dataset scale served by this instance: tiny|small|medium|full")
	dsSeed     = flag.Uint64("dataset-seed", 1, "seed for dataset synthesis and advertiser drawing")
	datasets   = flag.String("datasets", "", "comma-separated dataset allowlist (empty = whole registry)")
	defaultH   = flag.Int("h", 4, "default advertiser count for requests that omit h")
	maxH       = flag.Int("maxh", 64, "maximum advertiser count a request may ask for")
	workers    = flag.Int("workers", 1, "RR-sampling scratch slots per engine (1 = sequential-identical)")
	batch      = flag.Int("batch", 0, "per-worker RR sampling batch size (0 = default)")
	shardsFl   = flag.Int("shards", 0, "RR-shard count per engine (0 = unsharded path, 1 = shard layer with bit-identical output)")
	snapFlag   = flag.String("snapshot", "", "serve a snapshot/edge-list file (registered under its path and appended to -datasets); snapshots load zero-copy via mmap")
	maxConc    = flag.Int("max-concurrent", 0, "solve sessions running at once (0 = GOMAXPROCS)")
	maxQueue   = flag.Int("max-queue", 64, "sessions waiting for a slot before 429 (negative = no queue)")
	timeoutFl  = flag.Duration("timeout", 60*time.Second, "default per-session deadline")
	maxTimeout = flag.Duration("max-timeout", 10*time.Minute, "cap on request-supplied deadlines")
	cacheSize  = flag.Int("cache", 512, "result cache entries (negative disables)")
	drainFl    = flag.Duration("drain", 30*time.Second, "SIGTERM drain deadline for in-flight sessions")
	warmFlag   = flag.Bool("warm", false, "build engines for the -datasets list before listening")
	maxEvalW   = flag.Int("max-eval-workers", 0, "cap on per-request /v1/evaluate parallelism (0 = max(GOMAXPROCS, 2))")
	maxStale   = flag.Float64("max-stale", 0, "stale RR-set fraction tolerated before a /v1/mutate swap forces incremental repair (0 = always repair)")
	walDir     = flag.String("wal", "", "directory for the durable mutation WAL (empty = mutations are volatile); startup replays it before listening")
	walSync    = flag.String("wal-sync", "always", "WAL fsync policy: always (fsync before ack) | never (crash loses the OS buffer tail)")
	ckptEvery  = flag.Duration("checkpoint-interval", 0, "checkpoint mutated engines and compact their WALs this often (0 = only on POST /v1/checkpoint)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rmserved:", err)
		os.Exit(1)
	}
}

func run() error {
	scale, err := gen.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	var names []string
	if *datasets != "" {
		for _, n := range strings.Split(*datasets, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if *snapFlag != "" {
		// Same convention as rmsolve -snapshot: the file is registered
		// under its own path, so that path is its dataset name in the API.
		// Snapshot files resolve through dataset.LoadMmap, so a large
		// instance is served off the page cache instead of a heap copy.
		if err := dataset.Default.RegisterFile(*snapFlag, *snapFlag); err != nil {
			return err
		}
		names = append(names, *snapFlag)
	}
	var syncPolicy wal.SyncPolicy
	switch *walSync {
	case "always":
		syncPolicy = wal.SyncAlways
	case "never":
		syncPolicy = wal.SyncNever
	default:
		return fmt.Errorf("-wal-sync=%q: want always or never", *walSync)
	}
	srv := serve.New(serve.Config{
		Scale:              scale,
		DatasetSeed:        *dsSeed,
		Datasets:           names,
		DefaultH:           *defaultH,
		MaxH:               *maxH,
		Workers:            *workers,
		SampleBatch:        *batch,
		Shards:             *shardsFl,
		MaxConcurrent:      *maxConc,
		MaxQueue:           *maxQueue,
		DefaultTimeout:     *timeoutFl,
		MaxTimeout:         *maxTimeout,
		CacheEntries:       *cacheSize,
		DrainTimeout:       *drainFl,
		MaxEvalWorkers:     *maxEvalW,
		MaxStaleFraction:   *maxStale,
		WALDir:             *walDir,
		WALSync:            syncPolicy,
		CheckpointInterval: *ckptEvery,
	})
	if *warmFlag {
		if err := srv.Warm(nil, 0); err != nil {
			return err
		}
	}
	if *walDir != "" {
		// Recovery runs before the listener opens: the first request a
		// client can reach already sees the pre-crash state.
		replayed, err := srv.RecoverWAL()
		if err != nil {
			return fmt.Errorf("WAL recovery: %w", err)
		}
		fmt.Printf("rmserved: WAL recovery replayed %d mutation(s) from %s\n", replayed, *walDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address is echoed so scripts (and the smoke test) can
	// bind port 0 and discover what they got.
	fmt.Printf("rmserved: listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("rmserved: %v received, draining (deadline %v)\n", sig, *drainFl)
	}
	// Drain order: stop admitting at the application layer first (new
	// sessions get 503, readyz flips), wait for in-flight sessions, then
	// close the listener. Either way the daemon exits 0 — a drain that
	// had to cancel stragglers is still an orderly shutdown.
	if err := srv.Drain(*drainFl); err != nil {
		fmt.Fprintln(os.Stderr, "rmserved:", err)
	}
	hs.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "rmserved:", err)
	}
	fmt.Println("rmserved: drained, exiting")
	return nil
}
