package integration

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// waitFor polls fn with exponential backoff plus jitter until it
// succeeds or timeout passes — the integration suite's replacement for
// fixed-sleep polling: fast when the condition is already true, gentle
// on a loaded CI box when it is not.
func waitFor(t *testing.T, timeout time.Duration, what string, fn func() error) {
	t.Helper()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	deadline := time.Now().Add(timeout)
	delay := 10 * time.Millisecond
	for {
		err := fn()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiting for %s: %v", what, err)
		}
		time.Sleep(delay + time.Duration(rng.Int63n(int64(delay/2)+1)))
		if delay < 500*time.Millisecond {
			delay *= 2
		}
	}
}

// waitHealthy blocks until the daemon answers /healthz with 200 ok.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	waitFor(t, 30*time.Second, base+"/healthz", func() error {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
			return fmt.Errorf("healthz = %d %q", resp.StatusCode, body)
		}
		return nil
	})
}

// servedProc is one live rmserved process under test control.
type servedProc struct {
	t        *testing.T
	cmd      *exec.Cmd
	base     string
	preamble []string // stdout lines before the listen announcement

	mu     sync.Mutex
	stderr strings.Builder
	waited bool
}

// startServed launches rmserved with the given extra environment and
// flags, waits for its listen announcement, and streams stderr into a
// buffer the test can poll (the fault-injection markers arrive there).
func startServed(t *testing.T, env []string, args ...string) *servedProc {
	t.Helper()
	p := &servedProc{t: t}
	p.cmd = exec.Command(bin("rmserved"), append([]string{"-addr=127.0.0.1:0", "-scale=tiny"}, args...)...)
	p.cmd.Env = append(os.Environ(), env...)
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting rmserved: %v", err)
	}
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.wait()
	})
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			p.mu.Lock()
			p.stderr.WriteString(sc.Text())
			p.stderr.WriteString("\n")
			p.mu.Unlock()
		}
	}()

	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if a, ok := strings.CutPrefix(line, "rmserved: listening on "); ok {
			p.base = "http://" + a
			break
		}
		p.preamble = append(p.preamble, line)
	}
	if p.base == "" {
		t.Fatalf("rmserved never announced a listen address; stderr:\n%s", p.stderrText())
	}
	// Drain the rest of stdout so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	waitHealthy(t, p.base)
	return p
}

func (p *servedProc) stderrText() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// wait reaps the process (once) and returns its exit error.
func (p *servedProc) wait() error {
	p.mu.Lock()
	if p.waited {
		p.mu.Unlock()
		return nil
	}
	p.waited = true
	p.mu.Unlock()
	return p.cmd.Wait()
}

// stop SIGTERMs the daemon and waits for the orderly drain exit.
func (p *servedProc) stop() {
	p.t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		p.t.Fatalf("sending SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- p.wait() }()
	select {
	case err := <-done:
		if err != nil {
			p.t.Fatalf("rmserved exited non-zero after SIGTERM: %v\nstderr:\n%s", err, p.stderrText())
		}
	case <-time.After(60 * time.Second):
		p.t.Fatal("rmserved did not exit within 60s of SIGTERM")
	}
}

// kill SIGKILLs the daemon mid-flight — the simulated crash.
func (p *servedProc) kill() {
	p.t.Helper()
	p.cmd.Process.Kill()
	p.wait()
}

func postBody(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, out
}

// mutateArc applies a deterministic real graph change to arc (u, v):
// add it, or — if the tiny preset already has it — remove it. Both
// runs of a crash-recovery comparison start from the same synthetic
// graph, so the adaptive choice resolves identically in each; the
// returned request body lets a later phase replay the exact choice.
func mutateArc(t *testing.T, base string, h int, u, v int) (uint64, string) {
	t.Helper()
	req := fmt.Sprintf(`{"dataset":"flixster","h":%d,"add_edges":[{"u":%d,"v":%d}]}`, h, u, v)
	code, body := postBody(t, base+"/v1/mutate", req)
	if code == http.StatusBadRequest {
		req = fmt.Sprintf(`{"dataset":"flixster","h":%d,"remove_edges":[{"u":%d,"v":%d}]}`, h, u, v)
		code, body = postBody(t, base+"/v1/mutate", req)
	}
	if code != http.StatusOK {
		t.Fatalf("mutate arc (%d,%d): %d %s", u, v, code, body)
	}
	var res struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	return res.Generation, req
}

// canonicalSolve runs the reference solve and returns (generation,
// body with the wall-clock stats.duration_ms removed) — everything
// else in a solve response is deterministic for fixed seed and worker
// configuration, which is what recovery must reproduce byte for byte.
func canonicalSolve(t *testing.T, base string) (uint64, []byte) {
	t.Helper()
	code, body := postBody(t, base+"/v1/solve",
		`{"dataset":"flixster","h":2,"seed":7,"epsilon":0.3,"max_theta_per_ad":20000}`)
	if code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, body)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	gen := uint64(m["generation"].(float64))
	if stats, ok := m["stats"].(map[string]interface{}); ok {
		delete(stats, "duration_ms")
	}
	canon, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return gen, canon
}

// TestRMServedCrashRecovery is the end-to-end durability proof from
// ISSUE 10: a server is SIGKILLed in the crash window between the
// durable WAL append and the acked generation swap, restarted on the
// same WAL directory, and must come back serving the exact state of a
// server that was never interrupted — same generation, byte-identical
// solve.
func TestRMServedCrashRecovery(t *testing.T) {
	// Reference run: both mutations land on an uninterrupted server.
	refWAL := t.TempDir()
	ref := startServed(t, nil, "-wal="+refWAL)
	g1, _ := mutateArc(t, ref.base, 2, 0, 1)
	g2, secondMutation := mutateArc(t, ref.base, 2, 2, 3)
	if g1 != 1 || g2 != 2 {
		t.Fatalf("reference generations = %d, %d; want 1, 2", g1, g2)
	}
	wantGen, wantBody := canonicalSolve(t, ref.base)
	if wantGen != 2 {
		t.Fatalf("reference solve generation = %d, want 2", wantGen)
	}
	ref.stop()

	// Crash run, phase 1: first mutation, clean shutdown.
	crashWAL := t.TempDir()
	p1 := startServed(t, nil, "-wal="+crashWAL)
	if g, _ := mutateArc(t, p1.base, 2, 0, 1); g != 1 {
		t.Fatalf("phase-1 generation = %d, want 1", g)
	}
	p1.stop()

	// Phase 2: the second mutation stalls in the window where its record
	// is durable but the swap is not yet acked — and the process is
	// SIGKILLed right there. The client never hears back; the WAL did.
	p2 := startServed(t, []string{"RM_FAILPOINTS=serve.mutate.precommit=sleep:60s"}, "-wal="+crashWAL)
	if !strings.Contains(strings.Join(p2.preamble, "\n"), "WAL recovery replayed 1 mutation(s)") {
		t.Fatalf("phase-2 startup did not replay the first mutation:\n%s", strings.Join(p2.preamble, "\n"))
	}
	go func() {
		// The exact mutation the reference run acked as generation 2.
		// Blocks in the failpoint until the kill severs the connection.
		http.Post(p2.base+"/v1/mutate", "application/json", strings.NewReader(secondMutation))
	}()
	waitFor(t, 30*time.Second, "precommit failpoint marker", func() error {
		if !strings.Contains(p2.stderrText(), "at serve.mutate.precommit") {
			return fmt.Errorf("marker not yet on stderr")
		}
		return nil
	})
	p2.kill()

	// Phase 3: restart on the crashed WAL. Recovery must replay both
	// mutations — including the unacked one, because durability is
	// decided by the log — and serve the reference state bit for bit.
	p3 := startServed(t, nil, "-wal="+crashWAL)
	if !strings.Contains(strings.Join(p3.preamble, "\n"), "WAL recovery replayed 2 mutation(s)") {
		t.Fatalf("phase-3 startup did not replay both mutations:\n%s", strings.Join(p3.preamble, "\n"))
	}
	gotGen, gotBody := canonicalSolve(t, p3.base)
	if gotGen != wantGen {
		t.Fatalf("recovered generation = %d, want %d", gotGen, wantGen)
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("recovered solve diverges from uninterrupted run:\n want %s\n got  %s", wantBody, gotBody)
	}
	p3.stop()
}

// TestRMServedCrashBeforeAppendLosesNothingAcked is the complementary
// atomicity direction: killing the server before any second mutation is
// appended must leave recovery with exactly the acked history.
func TestRMServedCrashBeforeAppendLosesNothingAcked(t *testing.T) {
	dir := t.TempDir()
	p1 := startServed(t, nil, "-wal="+dir)
	if g, _ := mutateArc(t, p1.base, 2, 0, 1); g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}
	p1.kill() // hard kill with no in-flight mutation

	p2 := startServed(t, nil, "-wal="+dir)
	if !strings.Contains(strings.Join(p2.preamble, "\n"), "WAL recovery replayed 1 mutation(s)") {
		t.Fatalf("recovery after idle kill:\n%s", strings.Join(p2.preamble, "\n"))
	}
	gen, _ := canonicalSolve(t, p2.base)
	if gen != 1 {
		t.Fatalf("recovered generation = %d, want 1", gen)
	}
	p2.stop()
}
