// Package integration exercises the built command-line binaries the way
// an operator does: through exec, flags, pipes, exit codes, and signals.
// The unit suites cover the packages behind the commands; these tests
// cover the part nothing else does — flag wiring, stderr contracts,
// process lifecycle — by building rmsolve, rmbench, and rmserved once
// per run and driving the real executables.
package integration

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/eval"
)

// binDir holds the freshly built binaries for the whole test run.
var binDir string

func TestMain(m *testing.M) {
	os.Exit(func() int {
		dir, err := os.MkdirTemp("", "repro-integration-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "integration: mkdtemp:", err)
			return 1
		}
		defer os.RemoveAll(dir)
		binDir = dir

		// Resolve the module root from go.mod so the build works no matter
		// which directory `go test` was invoked from.
		gomod, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			fmt.Fprintln(os.Stderr, "integration: go env GOMOD:", err)
			return 1
		}
		root := filepath.Dir(strings.TrimSpace(string(gomod)))

		build := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator),
			"./cmd/rmsolve", "./cmd/rmbench", "./cmd/rmserved", "./cmd/graphgen")
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "integration: building binaries: %v\n%s", err, out)
			return 1
		}
		return m.Run()
	}())
}

func bin(name string) string { return filepath.Join(binDir, name) }

// runCmd executes a binary and returns (stdout, stderr, exit code).
func runCmd(t *testing.T, name string, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin(name), args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %s: %v", name, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// TestRMSolveTimeoutPartialStats pins the cancellation contract: a
// -timeout that fires mid-solve exits 1 and reports both the
// cancellation and the partial work done before it on stderr, instead
// of dying silently or pretending success.
func TestRMSolveTimeoutPartialStats(t *testing.T) {
	_, stderr, code := runCmd(t, "rmsolve",
		"-dataset=flixster", "-scale=tiny", "-h=4", "-timeout=1ms")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "rmsolve: canceled (timeout or interrupt):") {
		t.Errorf("stderr missing cancellation line:\n%s", stderr)
	}
	if !strings.Contains(stderr, "partial work before cancellation:") {
		t.Errorf("stderr missing partial-stats line:\n%s", stderr)
	}
}

// TestRMBenchUnknownDataset pins the registry error contract shared
// with rmserved's 404: an unknown -datasets entry fails up front and
// the message enumerates every registered name so the operator can fix
// the flag without consulting the source.
func TestRMBenchUnknownDataset(t *testing.T) {
	_, stderr, code := runCmd(t, "rmbench", "-datasets=nope", "-experiment=table1")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, `unknown dataset "nope"`) {
		t.Errorf("stderr missing unknown-dataset message:\n%s", stderr)
	}
	if !strings.Contains(stderr, "registered:") || !strings.Contains(stderr, "flixster") {
		t.Errorf("stderr does not enumerate registered datasets:\n%s", stderr)
	}
}

// TestRMBenchJSONReportValidates runs a real (cheap) experiment with
// -json and checks the emitted artifact against the documented schema —
// the same gate CI applies to benchmark uploads.
func TestRMBenchJSONReportValidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	_, stderr, code := runCmd(t, "rmbench",
		"-experiment=fig1", "-scale=tiny", "-quiet", "-json="+path)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep eval.BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("decoding report: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report fails schema validation: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "fig1" {
		t.Fatalf("report experiments = %+v, want exactly [fig1]", rep.Experiments)
	}
}

// TestRMServedLifecycle drives the daemon through its full life: bind
// port 0, parse the announced address, serve a health check and a real
// solve, then SIGTERM — which must drain and exit 0 with the documented
// farewell on stdout.
func TestRMServedLifecycle(t *testing.T) {
	cmd := exec.Command(bin("rmserved"),
		"-addr=127.0.0.1:0", "-scale=tiny", "-drain=30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting rmserved: %v", err)
	}
	defer cmd.Process.Kill()

	// The daemon announces its resolved listen address on stdout; that
	// line is the API contract that makes -addr=...:0 scriptable.
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "rmserved: listening on "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("rmserved never announced a listen address; stderr:\n%s", stderr.String())
	}
	base := "http://" + addr
	waitHealthy(t, base)

	solve := `{"dataset":"flixster","h":2,"epsilon":0.3,"max_theta_per_ad":20000}`
	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(solve))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve = %d, body: %s", resp.StatusCode, body)
	}
	var result struct {
		Dataset    string    `json:"dataset"`
		Generation uint64    `json:"generation"`
		Seeds      [][]int32 `json:"seeds"`
	}
	if err := json.Unmarshal(body, &result); err != nil {
		t.Fatalf("decoding solve result: %v", err)
	}
	if result.Dataset != "flixster" || len(result.Seeds) != 2 {
		t.Fatalf("solve result = dataset %q with %d ad seed lists, want flixster with 2",
			result.Dataset, len(result.Seeds))
	}
	if result.Generation != 0 {
		t.Fatalf("pre-mutate solve generation = %d, want 0", result.Generation)
	}

	// Mutate → solve round trip: an (empty, always-valid) batched delta
	// swaps the graph generation, and the next solve echoes it — the
	// wire-level proof that the result cache cannot replay a pre-mutate
	// answer.
	resp, err = http.Post(base+"/v1/mutate", "application/json",
		strings.NewReader(`{"dataset":"flixster","h":2}`))
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate = %d, body: %s", resp.StatusCode, body)
	}
	var mutated struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &mutated); err != nil {
		t.Fatalf("decoding mutate result: %v", err)
	}
	if mutated.Generation != 1 {
		t.Fatalf("mutate generation = %d, want 1", mutated.Generation)
	}
	resp, err = http.Post(base+"/v1/solve", "application/json", strings.NewReader(solve))
	if err != nil {
		t.Fatalf("post-mutate solve: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-mutate solve = %d, body: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &result); err != nil {
		t.Fatalf("decoding post-mutate solve result: %v", err)
	}
	if result.Generation != 1 {
		t.Fatalf("post-mutate solve generation = %d, want 1", result.Generation)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	var rest bytes.Buffer
	for sc.Scan() {
		rest.WriteString(sc.Text())
		rest.WriteString("\n")
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("rmserved exited non-zero after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("rmserved did not exit within 60s of SIGTERM")
	}
	if !strings.Contains(rest.String(), "rmserved: drained, exiting") {
		t.Fatalf("stdout after SIGTERM missing drain farewell:\n%s", rest.String())
	}
	if !strings.Contains(rest.String(), "received, draining") {
		t.Fatalf("stdout after SIGTERM missing drain announcement:\n%s", rest.String())
	}
}

// TestRMServedSnapshotUnderMemoryBudget proves the zero-copy load path
// end to end at the process level: graphgen streams a huge-preset
// snapshot bigger than the heap budget we then impose on rmserved via
// RLIMIT_DATA, and the daemon still starts, warms the dataset, and
// serves — possible only because LoadMmap aliases the file-backed
// mapping (not counted against RLIMIT_DATA) instead of materializing
// the arrays on the heap like the copy loader, which would need more
// than the cap for the decoded sections alone. Thread stacks count
// toward RLIMIT_DATA too (MAP_STACK is advisory), so the wrapper also
// shrinks them; `exec` makes rmserved replace the shell, keeping
// signal delivery and exit codes direct.
func TestRMServedSnapshotUnderMemoryBudget(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("RLIMIT_DATA semantics for file-backed mappings are Linux-specific")
	}
	if testing.Short() {
		t.Skip("generates a ~110 MB snapshot")
	}
	snap := filepath.Join(t.TempDir(), "huge.snap")
	if _, stderr, code := runCmd(t, "graphgen",
		"-preset=huge", "-scale=small", "-format=snapshot", "-out="+snap); code != 0 {
		t.Fatalf("graphgen exit code = %d\nstderr:\n%s", code, stderr)
	}
	info, err := os.Stat(snap)
	if err != nil {
		t.Fatalf("stat snapshot: %v", err)
	}
	// Cap the data segment at 3/4 of the file size: generous for the
	// runtime, engines, and warm caches, impossible for any loader that
	// heap-allocates the decoded graph (the CSR + probability sections
	// are ~95% of the file).
	capKB := info.Size() * 3 / 4 / 1024
	cmd := exec.Command("sh", "-c", fmt.Sprintf(
		"ulimit -s 1024; ulimit -d %d; exec %s -addr=127.0.0.1:0 -scale=tiny -snapshot=%s -warm -drain=30s",
		capKB, bin("rmserved"), snap))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting capped rmserved: %v", err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "rmserved: listening on "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("capped rmserved never announced a listen address (killed by the memory budget?); stderr:\n%s",
			stderr.String())
	}
	base := "http://" + addr
	waitHealthy(t, base)

	// The metrics endpoint must attribute the snapshot to the mmap path;
	// seeing the full file size here is what certifies no copy happened.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf("rmserved_snapshot_mmap_bytes %d", info.Size())
	if !strings.Contains(string(body), want) {
		t.Fatalf("metrics missing %q:\n%s", want, body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	var rest bytes.Buffer
	for sc.Scan() {
		rest.WriteString(sc.Text())
		rest.WriteString("\n")
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("capped rmserved exited non-zero after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("capped rmserved did not exit within 60s of SIGTERM")
	}
	if !strings.Contains(rest.String(), "rmserved: drained, exiting") {
		t.Fatalf("stdout after SIGTERM missing drain farewell:\n%s", rest.String())
	}
}
