package repro

import (
	"context"
	"math"
	"path/filepath"
	"testing"
)

// TestPublicAPIQuickstart walks the documented quickstart path end to end
// through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	w, err := NewWorkbench("flixster", Params{
		Scale: ScaleTiny, Seed: 42, H: 3, SingletonRuns: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := w.Problem(Linear, 0.2)
	alloc, stats, err := TICSRM(p, Options{Epsilon: 0.3, Seed: 42, MaxThetaPerAd: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.NumSeeds() == 0 || stats.Duration <= 0 {
		t.Fatal("quickstart produced no work")
	}
	ev := EvaluateMC(p, alloc, 500, 2, 7)
	if ev.TotalRevenue() <= 0 {
		t.Fatal("no revenue")
	}
	evComp := EvaluateCompetitive(p, alloc, 500, 2, 7)
	if evComp.TotalRevenue() > ev.TotalRevenue()*1.05 {
		t.Error("competitive evaluation should not exceed independent")
	}
	// Serialization round trip through the facade.
	path := filepath.Join(t.TempDir(), "alloc.json")
	if err := SaveAllocation(path, alloc); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAllocation(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSeeds() != alloc.NumSeeds() {
		t.Error("allocation round trip lost seeds")
	}
}

// TestPublicAPIAllAlgorithms runs the four compared algorithms through
// the facade on one problem.
func TestPublicAPIAllAlgorithms(t *testing.T) {
	w, err := NewWorkbench("epinions", Params{Scale: ScaleTiny, Seed: 7, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := w.Problem(Sublinear, 12)
	opt := Options{Epsilon: 0.3, Seed: 7, MaxThetaPerAd: 30000}
	ctx := context.Background()
	for name, run := range map[string]func(*Problem, Options) (*Allocation, *Stats, error){
		"TI-CSRM": TICSRM,
		"TI-CARM": TICARM,
		"PageRank-GR": func(p *Problem, opt Options) (*Allocation, *Stats, error) {
			return PageRankGR(ctx, nil, p, opt)
		},
		"PageRank-RR": func(p *Problem, opt Options) (*Allocation, *Stats, error) {
			return PageRankRR(ctx, nil, p, opt)
		},
	} {
		alloc, _, err := run(p, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := alloc.ValidateSlack(p, 0.3); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestPublicAPIReferenceGreedy exercises the Figure 1 gadget through the
// facade.
func TestPublicAPIReferenceGreedy(t *testing.T) {
	p := Fig1Instance()
	oracle := NewMCOracle(p, 2000, 1)
	ca, err := CAGreedy(p, oracle)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := CSGreedy(p, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ca.TotalRevenue()-3) > 0.2 || math.Abs(cs.TotalRevenue()-6) > 0.2 {
		t.Errorf("gadget revenues: CA %v (want ≈3), CS %v (want ≈6)",
			ca.TotalRevenue(), cs.TotalRevenue())
	}
}

// TestPublicAPIIMAndLearning smoke-tests the IM and model-learning
// surfaces.
func TestPublicAPIIMAndLearning(t *testing.T) {
	rng := NewRNG(3)
	w, err := NewWorkbench("epinions", Params{Scale: ScaleTiny, Seed: 3, H: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := w.Dataset.Graph
	probs := w.Model.EdgeProbs(w.Ads[0].Gamma)

	tim, err := TIM(context.Background(), g, probs, 3, TIMOptions{Epsilon: 0.3, MaxTheta: 20000}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if len(tim.Seeds) != 3 {
		t.Fatalf("TIM returned %d seeds", len(tim.Seeds))
	}
	greedy, err := GreedyIM(context.Background(), g, probs, 3, 500, 2, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy.Seeds) != 3 {
		t.Fatalf("GreedyIM returned %d seeds", len(greedy.Seeds))
	}
	if len(DegreeSeeds(g, 3)) != 3 || len(SingleDiscountSeeds(g, 3)) != 3 {
		t.Fatal("heuristics returned wrong seed counts")
	}

	eps := SimulateEpisodes(g, probs, 200, 2, rng.Split())
	learned := EstimateIC(g, eps, LearnOptions{Iterations: 5})
	if int64(len(learned)) != g.NumEdges() {
		t.Fatal("learned probabilities have wrong length")
	}
	if ll := CascadeLogLikelihood(g, learned, eps); math.IsNaN(ll) || ll > 0 {
		t.Errorf("log-likelihood %v out of range", ll)
	}
}

// TestPublicAPIAdaptive smoke-tests the adaptive loop through the facade.
func TestPublicAPIAdaptive(t *testing.T) {
	w, err := NewWorkbench("epinions", Params{Scale: ScaleTiny, Seed: 11, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := w.Problem(Linear, 0.3)
	res, err := AdaptiveRun(p, AdaptiveOptions{
		Engine:    Options{Epsilon: 0.3, Seed: 11, MaxThetaPerAd: 20000},
		Rounds:    2,
		WorldSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdaptiveRevenue <= 0 || res.OneShotRevenue <= 0 {
		t.Error("adaptive run produced no revenue")
	}
}
