package repro

import (
	"net/http"
	"time"

	"repro/internal/serve"
)

// Serving-layer types: the long-running HTTP solver service behind
// cmd/rmserved, embeddable in any process that wants warm solver
// engines behind an HTTP surface.
type (
	// ServerConfig fixes a solver server's resources and limits (scale,
	// dataset allowlist, concurrency, queue bound, deadlines, result
	// cache size, drain deadline).
	ServerConfig = serve.Config
	// SolverServer is the service itself: warm engines, admission
	// control, a bit-identical result cache, Prometheus metrics, and
	// graceful drain.
	SolverServer = serve.Server
	// SolveAPIRequest / SolveAPIResult are the POST /v1/solve wire
	// schema.
	SolveAPIRequest = serve.SolveRequest
	SolveAPIResult  = serve.SolveResult
	// EvaluateAPIRequest / EvaluateAPIResult are the POST /v1/evaluate
	// wire schema.
	EvaluateAPIRequest = serve.EvaluateRequest
	EvaluateAPIResult  = serve.EvaluateResult
	// MutateAPIRequest / MutateAPIResult are the POST /v1/mutate wire
	// schema: one batched graph delta swapped in atomically, answering
	// with the new generation and RR-repair accounting.
	MutateAPIRequest = serve.MutateRequest
	MutateAPIResult  = serve.MutateResult
	// APIError is the JSON body of every non-2xx answer.
	APIError = serve.ErrorResponse
)

// NewSolverServer builds a solver service from the config. Mount
// Handler on an http.Server (wire BaseContext so in-flight sessions
// abort on shutdown) and call Drain on SIGTERM.
func NewSolverServer(cfg ServerConfig) *SolverServer { return serve.New(cfg) }

// Compile-time checks that the server surface keeps its contract.
var (
	_ = func(s *SolverServer) http.Handler { return s.Handler() }
	_ = func(s *SolverServer, d time.Duration) error { return s.Drain(d) }
)
