package repro

import (
	"net/http"
	"time"

	"repro/internal/serve"
	"repro/internal/wal"
)

// Serving-layer types: the long-running HTTP solver service behind
// cmd/rmserved, embeddable in any process that wants warm solver
// engines behind an HTTP surface.
type (
	// ServerConfig fixes a solver server's resources and limits (scale,
	// dataset allowlist, concurrency, queue bound, deadlines, result
	// cache size, drain deadline).
	ServerConfig = serve.Config
	// SolverServer is the service itself: warm engines, admission
	// control, a bit-identical result cache, Prometheus metrics, and
	// graceful drain.
	SolverServer = serve.Server
	// SolveAPIRequest / SolveAPIResult are the POST /v1/solve wire
	// schema.
	SolveAPIRequest = serve.SolveRequest
	SolveAPIResult  = serve.SolveResult
	// EvaluateAPIRequest / EvaluateAPIResult are the POST /v1/evaluate
	// wire schema.
	EvaluateAPIRequest = serve.EvaluateRequest
	EvaluateAPIResult  = serve.EvaluateResult
	// MutateAPIRequest / MutateAPIResult are the POST /v1/mutate wire
	// schema: one batched graph delta swapped in atomically, answering
	// with the new generation and RR-repair accounting.
	MutateAPIRequest = serve.MutateRequest
	MutateAPIResult  = serve.MutateResult
	// CheckpointAPIRequest / CheckpointAPIResult are the POST
	// /v1/checkpoint wire schema: snapshot one engine's serving state
	// into its WAL directory and compact the mutation log onto it.
	CheckpointAPIRequest = serve.CheckpointRequest
	CheckpointAPIResult  = serve.CheckpointResult
	// APIError is the JSON body of every non-2xx answer.
	APIError = serve.ErrorResponse

	// MutationWAL is the durable, CRC-framed, segment-rotating log of
	// graph deltas behind a WAL-enabled server; WALRecord is one logged
	// mutation and WALOptions its durability knobs (fsync policy,
	// segment size).
	MutationWAL = wal.Log
	WALRecord   = wal.Record
	WALOptions  = wal.Options
)

// OpenMutationWAL opens (or creates) a mutation log directory and
// replays its records, repairing a torn tail from a crashed append.
// Corruption that cannot be explained by a crash mid-append is an
// error wrapping ErrBadWAL.
func OpenMutationWAL(dir string, opts WALOptions) (*MutationWAL, []WALRecord, error) {
	return wal.Open(dir, opts)
}

// ErrBadWAL marks a mutation log whose damage recovery must not paper
// over (interior corruption, generation gaps, foreign records).
var ErrBadWAL = wal.ErrBadWAL

// NewSolverServer builds a solver service from the config. Mount
// Handler on an http.Server (wire BaseContext so in-flight sessions
// abort on shutdown) and call Drain on SIGTERM.
func NewSolverServer(cfg ServerConfig) *SolverServer { return serve.New(cfg) }

// Compile-time checks that the server surface keeps its contract.
var (
	_ = func(s *SolverServer) http.Handler { return s.Handler() }
	_ = func(s *SolverServer, d time.Duration) error { return s.Drain(d) }
	_ = func(s *SolverServer) (int, error) { return s.RecoverWAL() }
)
